// Package structures provides concrete builders for every data structure
// the paper uses as an ADDS example (Section 3): the two-way linked list,
// the binary tree with parent pointers, the orthogonal list (sparse
// matrix), the list of lists, the two-dimensional range tree, and the
// circular list. Each builder constructs interp.Node heaps that satisfy the
// corresponding declaration, so the dynamic checker (interp.Check), the
// property tests, and the benchmarks all run against realistic instances.
//
// Decls is the single mini source of record for the declarations; every
// builder's output validates against it.
package structures

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/shape"
	"repro/internal/source/parser"
)

// Decls contains the paper's six ADDS declarations, verbatim modulo
// spelling.
const Decls = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
type OrthL [X] [Y] {
    int data;
    OrthL *across is uniquely forward along X;
    OrthL *back is backward along X;
    OrthL *down is uniquely forward along Y;
    OrthL *up is backward along Y;
};
type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};
type TwoDRT [down] [sub] [leaves] where sub || down, sub || leaves {
    int data;
    TwoDRT *left, *right is uniquely forward along down;
    TwoDRT *subtree is uniquely forward along sub;
    TwoDRT *next is uniquely forward along leaves;
    TwoDRT *prev is backward along leaves;
};
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

// Env returns the shape environment of the paper's declarations.
func Env() *shape.Env {
	return shape.MustBuild(parser.MustParse(Decls))
}

// ---------------------------------------------------------------------------
// TwoWayLL

// TwoWayList builds a doubly linked list of n nodes with the given values
// (values are cycled if shorter than n). It returns the head, or nil for
// n == 0.
func TwoWayList(h *interp.Heap, values []int64, n int) *interp.Node {
	var head, prev *interp.Node
	for i := 0; i < n; i++ {
		node := h.New("TwoWayLL")
		if len(values) > 0 {
			node.Ints["data"] = values[i%len(values)]
		} else {
			node.Ints["data"] = int64(i)
		}
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
			node.Ptrs["prev"] = prev
		}
		prev = node
	}
	return head
}

// ListValues reads data fields along next.
func ListValues(hd *interp.Node) []int64 {
	var out []int64
	for n := hd; n != nil; n = n.Ptrs["next"] {
		out = append(out, n.Ints["data"])
	}
	return out
}

// ListLen counts nodes along next.
func ListLen(hd *interp.Node) int {
	c := 0
	for n := hd; n != nil; n = n.Ptrs["next"] {
		c++
	}
	return c
}

// ---------------------------------------------------------------------------
// PBinTree

// BinTree builds a binary search tree with parent pointers from the keys,
// inserted in order. Duplicates go right.
func BinTree(h *interp.Heap, keys []int64) *interp.Node {
	var root *interp.Node
	for _, k := range keys {
		node := h.New("PBinTree")
		node.Ints["data"] = k
		if root == nil {
			root = node
			continue
		}
		cur := root
		for {
			if k < cur.Ints["data"] {
				if cur.Ptrs["left"] == nil {
					cur.Ptrs["left"] = node
					node.Ptrs["parent"] = cur
					break
				}
				cur = cur.Ptrs["left"]
			} else {
				if cur.Ptrs["right"] == nil {
					cur.Ptrs["right"] = node
					node.Ptrs["parent"] = cur
					break
				}
				cur = cur.Ptrs["right"]
			}
		}
	}
	return root
}

// PerfectTree builds a perfect binary tree of the given depth (depth 1 is a
// single node), data = preorder index.
func PerfectTree(h *interp.Heap, depth int) *interp.Node {
	if depth <= 0 {
		return nil
	}
	idx := int64(0)
	var build func(d int) *interp.Node
	build = func(d int) *interp.Node {
		n := h.New("PBinTree")
		n.Ints["data"] = idx
		idx++
		if d > 1 {
			l, r := build(d-1), build(d-1)
			n.Ptrs["left"] = l
			n.Ptrs["right"] = r
			l.Ptrs["parent"] = n
			r.Ptrs["parent"] = n
		}
		return n
	}
	return build(depth)
}

// TreeSize counts nodes via left/right.
func TreeSize(root *interp.Node) int {
	if root == nil {
		return 0
	}
	return 1 + TreeSize(root.Ptrs["left"]) + TreeSize(root.Ptrs["right"])
}

// InOrder returns the data fields of an in-order walk.
func InOrder(root *interp.Node) []int64 {
	if root == nil {
		return nil
	}
	out := InOrder(root.Ptrs["left"])
	out = append(out, root.Ints["data"])
	return append(out, InOrder(root.Ptrs["right"])...)
}

// ---------------------------------------------------------------------------
// Orthogonal list (sparse matrix)

// SparseMatrix is an orthogonal-list sparse matrix: row and column header
// chains of OrthL nodes, elements linked across (within a row) and down
// (within a column), as in the paper's Section 3.1 figure.
type SparseMatrix struct {
	Rows, Cols int
	RowHead    []*interp.Node // first element of each row, or nil
	ColHead    []*interp.Node // first element of each column, or nil
	Origin     *interp.Node   // top-left-most element, or nil
}

// Orthogonal builds a sparse matrix from a dense [][]int64, storing only
// non-zero entries. Type name: OrthL; data holds the value.
func Orthogonal(h *interp.Heap, dense [][]int64) *SparseMatrix {
	rows := len(dense)
	cols := 0
	if rows > 0 {
		cols = len(dense[0])
	}
	m := &SparseMatrix{
		Rows: rows, Cols: cols,
		RowHead: make([]*interp.Node, rows),
		ColHead: make([]*interp.Node, cols),
	}
	lastInRow := make([]*interp.Node, rows)
	lastInCol := make([]*interp.Node, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := dense[r][c]
			if v == 0 {
				continue
			}
			n := h.New("OrthL")
			n.Ints["data"] = v
			if lastInRow[r] == nil {
				m.RowHead[r] = n
			} else {
				lastInRow[r].Ptrs["across"] = n
				n.Ptrs["back"] = lastInRow[r]
			}
			lastInRow[r] = n
			if lastInCol[c] == nil {
				m.ColHead[c] = n
			} else {
				lastInCol[c].Ptrs["down"] = n
				n.Ptrs["up"] = lastInCol[c]
			}
			lastInCol[c] = n
			if m.Origin == nil {
				m.Origin = n
			}
		}
	}
	return m
}

// RowSum traverses a row along across.
func (m *SparseMatrix) RowSum(r int) int64 {
	var s int64
	for n := m.RowHead[r]; n != nil; n = n.Ptrs["across"] {
		s += n.Ints["data"]
	}
	return s
}

// ColSum traverses a column along down.
func (m *SparseMatrix) ColSum(c int) int64 {
	var s int64
	for n := m.ColHead[c]; n != nil; n = n.Ptrs["down"] {
		s += n.Ints["data"]
	}
	return s
}

// ---------------------------------------------------------------------------
// List of lists

// ListOfLists builds the paper's independent-dimension structure: a spine
// of row heads linked down/up, each row's elements linked across/back.
// Every node is reachable by exactly one forward traversal (down* then
// across*), so the X and Y dimensions are independent.
func ListOfLists(h *interp.Heap, rows, cols int) *interp.Node {
	var first, prevRow *interp.Node
	for r := 0; r < rows; r++ {
		rowHead := h.New("LOLS")
		rowHead.Ints["data"] = int64(r * cols)
		if prevRow == nil {
			first = rowHead
		} else {
			prevRow.Ptrs["down"] = rowHead
			rowHead.Ptrs["up"] = prevRow
		}
		prev := rowHead
		for c := 1; c < cols; c++ {
			n := h.New("LOLS")
			n.Ints["data"] = int64(r*cols + c)
			prev.Ptrs["across"] = n
			n.Ptrs["back"] = prev
			prev = n
		}
		prevRow = rowHead
	}
	return first
}

// ---------------------------------------------------------------------------
// Two-dimensional range tree

// Point is a 2D point for range trees.
type Point struct{ X, Y int64 }

// RangeTree builds a simplified two-dimensional range tree over the points
// (Section 3.1's three-dimensional example): a balanced binary tree over X
// whose leaves are linked into a two-way list (next/prev along leaves), and
// every internal node carries a subtree — a balanced binary tree over the
// Y values of the points below it, again with linked leaves.
func RangeTree(h *interp.Heap, pts []Point) *interp.Node {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	for i := 0; i < len(sorted); i++ { // insertion sort by X: deterministic
		for j := i; j > 0 && sorted[j].X < sorted[j-1].X; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var leaves []*interp.Node
	root := buildRange(h, sorted, &leaves, true)
	linkLeaves(leaves)
	return root
}

// buildRange builds a balanced tree over the points (by X when primary, by
// Y otherwise); leaves collect into the slice. Primary internal nodes and
// the primary root get Y-subtrees.
func buildRange(h *interp.Heap, pts []Point, leaves *[]*interp.Node, primary bool) *interp.Node {
	n := h.New("TwoDRT")
	if len(pts) == 1 {
		if primary {
			n.Ints["data"] = pts[0].X
		} else {
			n.Ints["data"] = pts[0].Y
		}
		if leaves != nil {
			*leaves = append(*leaves, n)
		}
		return n
	}
	mid := len(pts) / 2
	if primary {
		n.Ints["data"] = pts[mid-1].X
	} else {
		n.Ints["data"] = pts[mid-1].Y
	}
	l := buildRange(h, pts[:mid], leaves, primary)
	r := buildRange(h, pts[mid:], leaves, primary)
	n.Ptrs["left"] = l
	n.Ptrs["right"] = r
	if primary {
		// The secondary structure over Y for the points below this node.
		ys := append([]Point(nil), pts...)
		for i := 0; i < len(ys); i++ {
			for j := i; j > 0 && ys[j].Y < ys[j-1].Y; j-- {
				ys[j], ys[j-1] = ys[j-1], ys[j]
			}
		}
		n.Ptrs["subtree"] = buildRange(h, ys, nil, false)
	}
	return n
}

func linkLeaves(leaves []*interp.Node) {
	for i := 1; i < len(leaves); i++ {
		leaves[i-1].Ptrs["next"] = leaves[i]
		leaves[i].Ptrs["prev"] = leaves[i-1]
	}
}

// RangeQuery1D returns leaf data in [lo, hi] by descending to the first
// leaf >= lo and walking the leaf list — the query pattern the paper's
// Section 3.1 motivates.
func RangeQuery1D(root *interp.Node, lo, hi int64) []int64 {
	if root == nil {
		return nil
	}
	cur := root
	for cur.Ptrs["left"] != nil {
		if lo <= cur.Ints["data"] {
			cur = cur.Ptrs["left"]
		} else {
			cur = cur.Ptrs["right"]
		}
	}
	var out []int64
	for n := cur; n != nil; n = n.Ptrs["next"] {
		v := n.Ints["data"]
		if v > hi {
			break
		}
		if v >= lo {
			out = append(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Circular list

// Circular builds a ring of n CirL nodes (n >= 1), data = index.
func Circular(h *interp.Heap, n int) *interp.Node {
	if n <= 0 {
		return nil
	}
	first := h.New("CirL")
	first.Ints["data"] = 0
	cur := first
	for i := 1; i < n; i++ {
		nd := h.New("CirL")
		nd.Ints["data"] = int64(i)
		cur.Ptrs["next"] = nd
		cur = nd
	}
	cur.Ptrs["next"] = first
	return first
}

// RingLen walks a circular list once around.
func RingLen(first *interp.Node) int {
	if first == nil {
		return 0
	}
	c := 1
	for n := first.Ptrs["next"]; n != nil && n != first; n = n.Ptrs["next"] {
		c++
	}
	return c
}

// ---------------------------------------------------------------------------
// Random generation (for property tests and benchmarks)

// Random builds a random well-formed instance of the named structure with
// about size nodes, returning its roots. Structures are always valid with
// respect to their declarations.
func Random(h *interp.Heap, rng *rand.Rand, typeName string, size int) ([]*interp.Node, error) {
	if size < 1 {
		size = 1
	}
	switch typeName {
	case "TwoWayLL":
		vals := make([]int64, size)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		return []*interp.Node{TwoWayList(h, vals, size)}, nil
	case "PBinTree":
		keys := make([]int64, size)
		for i := range keys {
			keys[i] = rng.Int63n(int64(size * 10))
		}
		return []*interp.Node{BinTree(h, keys)}, nil
	case "OrthL":
		r := rng.Intn(size) + 1
		c := (size + r - 1) / r
		dense := make([][]int64, r)
		for i := range dense {
			dense[i] = make([]int64, c)
			for j := range dense[i] {
				if rng.Intn(2) == 0 {
					dense[i][j] = rng.Int63n(9) + 1
				}
			}
		}
		m := Orthogonal(h, dense)
		roots := append(append([]*interp.Node{}, m.RowHead...), m.ColHead...)
		var nonNil []*interp.Node
		for _, n := range roots {
			if n != nil {
				nonNil = append(nonNil, n)
			}
		}
		return nonNil, nil
	case "LOLS":
		r := rng.Intn(size) + 1
		c := (size + r - 1) / r
		return []*interp.Node{ListOfLists(h, r, c)}, nil
	case "TwoDRT":
		pts := make([]Point, size)
		for i := range pts {
			pts[i] = Point{X: rng.Int63n(1000), Y: rng.Int63n(1000)}
		}
		return []*interp.Node{RangeTree(h, pts)}, nil
	case "CirL":
		return []*interp.Node{Circular(h, size)}, nil
	}
	return nil, fmt.Errorf("unknown structure %q", typeName)
}

// Names lists the structures Random understands.
func Names() []string {
	return []string{"TwoWayLL", "PBinTree", "OrthL", "LOLS", "TwoDRT", "CirL"}
}
