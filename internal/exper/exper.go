// Package exper regenerates every evaluation artifact of the paper (the
// experiment index E1-E10 of DESIGN.md): the worked matrices of Section 5.1,
// the Figure 2 dependence graphs, the Section 5.2 pipelining derivation with
// theoretical and measured speedups, the [HG92] unrolling numbers, and the
// baseline comparisons. cmd/addsbench prints the reports; the root
// bench_test.go wraps them as Go benchmarks.
package exper

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// Report is one experiment's regenerated table.
type Report struct {
	ID      string
	Title   string
	Claim   string // what the paper reports
	Headers []string
	Rows    [][]string
	Notes   []string
	Figures []string // verbatim blocks (matrices, code, schedules)
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Claim)
	}
	if len(r.Headers) > 0 {
		widths := make([]int, len(r.Headers))
		for i, h := range r.Headers {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "  %-*s", widths[i], c)
				} else {
					fmt.Fprintf(&b, "  %s", c)
				}
			}
			b.WriteByte('\n')
		}
		line(r.Headers)
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, f := range r.Figures {
		b.WriteByte('\n')
		b.WriteString(f)
		if !strings.HasSuffix(f, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Def names one experiment without running it: id, title, and the function
// that regenerates its report. cmd/addsbench uses the registry to list
// experiments cheaply and to run selected ones concurrently.
type Def struct {
	ID    string
	Title string
	Run   func() *Report
}

// Defs returns the experiment registry, in index order. Titles are duplicated
// from the Report literals so listing does not run anything; TestDefs keeps
// the two in sync.
func Defs() []Def {
	return []Def{
		{"E1", "Figure 1 — arrays vs linked lists", E1},
		{"E2", "Section 3 declarations hold on concrete structures", E2},
		{"E3", "Section 5.1.2 — conservative alias matrix for the shift loop", E3},
		{"E4", "Section 5.1.2 — general path matrices (ADDS + GPM)", E4},
		{"E5", "Figure 2 — dependence graph for the pseudo-assembly loop", E5},
		{"E6", "Section 5.2 — software pipelining the shift loop", E6},
		{"E7", "[HG92] — loop unrolling on the scalar machine", E7},
		{"E8", "k-limited graphs vs ADDS+GPM (Section 1.2's criticism)", E8},
		{"E9", "Section 5.1.1 — abstraction validation across a subtree move", E9},
		{"E10", "VLIW width sweep — compaction vs software pipelining", E10},
	}
}

// All runs every experiment.
func All() []*Report {
	defs := Defs()
	out := make([]*Report, len(defs))
	for i, d := range defs {
		out[i] = d.Run()
	}
	return out
}

// ByID runs one experiment by id ("E1".."E10"), or nil. Only the requested
// experiment runs.
func ByID(id string) *Report {
	for _, d := range Defs() {
		if strings.EqualFold(d.ID, id) {
			return d.Run()
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared fixtures

// TwoWayDecl is the running declaration.
const TwoWayDecl = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

// ShiftSrc is the paper's Section 5.1.2 / 5.2 program.
const ShiftSrc = TwoWayDecl + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

// InitSrc is the [HG92] list initialization loop.
const InitSrc = TwoWayDecl + `
void initlist(TwoWayLL *p) {
    while (p != NULL) {
        p->data = 0;
        p = p->next;
    }
}
`

// fixture bundles the per-function artifacts every experiment needs.
type fixture struct {
	info *types.Info
	fi   *types.FuncInfo
	prog *ir.Program
	loop *ir.LoopInfo
	g    *norm.Graph
}

func load(src, fn string) *fixture {
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		panic("exper: function " + fn + " missing")
	}
	prog := ir.Build(fi, info.Env)
	var loop *ir.LoopInfo
	if len(prog.Loops) > 0 {
		loop = prog.Loops[0]
	}
	return &fixture{info: info, fi: fi, prog: prog, loop: loop, g: norm.Build(fi, info.Env)}
}

func (f *fixture) opts(o alias.Oracle) depgraph.Options {
	var nl *norm.Loop
	if f.loop != nil && f.loop.SrcID < len(f.g.Loops) {
		nl = f.g.Loops[f.loop.SrcID]
	}
	return depgraph.Options{
		Oracle:   o,
		NormLoop: nl,
		Env:      f.info.Env,
		VarTypes: f.fi.Vars,
	}
}

// oracleSet returns the three analyses the paper compares.
func (f *fixture) oracleSet() []alias.Oracle {
	return []alias.Oracle{
		alias.NewConservative(f.g),
		alias.NewClassic(f.g, f.info.Env),
		alias.NewGPM(f.g, f.info.Env),
	}
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
