package exper

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/core/pathmatrix"
	"repro/internal/depgraph"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/structures"
	"repro/internal/xform"
)

// E1 reproduces Figure 1's contrast: for the linked-list version of the
// array loop, can the compiler tell that q->data is loop-invariant and that
// iterations touch distinct nodes? With arrays both answers are trivially
// yes; for lists they depend on the alias analysis.
func E1() *Report {
	// The list counterpart of "a[i] = a[i] + b[j]": the invariant operand
	// is the head node's datum, exactly as in the paper's Section 5.1.2
	// loop (two unrelated parameters could legitimately alias, which is why
	// the paper anchors the invariant at the head of the same list).
	src := TwoWayDecl + `
void addlists(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data + hd->data;
        p = p->next;
    }
}
`
	r := &Report{
		ID:    "E1",
		Title: "Figure 1 — arrays vs linked lists",
		Claim: "array codes get both properties for free; list codes need alias analysis, and conservative analysis gets neither",
		Headers: []string{"analysis", "hd->data invariant (hoisted)", "iterations independent",
			"carried mem deps"},
		Notes: []string{
			"the array half of Figure 1 is the trivially-true baseline: a[i] vs a[j] disambiguate by index",
			"'iterations independent' = no loop-carried memory dependences in the dependence graph",
		},
	}
	f := load(src, "addlists")
	for _, o := range f.oracleSet() {
		opt := f.opts(o)
		_, _, hoisted := xform.LICM(f.prog, f.loop, opt)
		dg := depgraph.Build(f.prog, f.loop, opt)
		carried := dg.CarriedMemEdges()
		r.Rows = append(r.Rows, []string{
			o.Name(), yes(len(hoisted) > 0), yes(len(carried) == 0),
			fmt.Sprintf("%d", len(carried)),
		})
	}
	return r
}

// E2 validates the six Section 3 declarations on concrete instances: every
// structure the paper describes builds, and the dynamic encoding of
// Defs 4.2-4.9 finds no violations.
func E2() *Report {
	r := &Report{
		ID:      "E2",
		Title:   "Section 3 declarations hold on concrete structures",
		Claim:   "the six example declarations describe real structures (Defs 4.2-4.10)",
		Headers: []string{"structure", "size", "nodes reachable", "violations"},
	}
	env := structures.Env()
	for _, name := range structures.Names() {
		for _, size := range []int{10, 100, 1000} {
			h := interp.NewHeap()
			roots := buildFixed(h, name, size)
			nodes := interp.Reachable(roots...)
			vs := interp.Check(env, roots...)
			r.Rows = append(r.Rows, []string{
				name, fmt.Sprintf("%d", size),
				fmt.Sprintf("%d", len(nodes)), fmt.Sprintf("%d", len(vs)),
			})
		}
	}
	return r
}

// buildFixed deterministically builds a structure of about the given size.
func buildFixed(h *interp.Heap, name string, size int) []*interp.Node {
	switch name {
	case "TwoWayLL":
		return []*interp.Node{structures.TwoWayList(h, nil, size)}
	case "PBinTree":
		keys := make([]int64, size)
		for i := range keys {
			keys[i] = int64((i * 7919) % (size * 3))
		}
		return []*interp.Node{structures.BinTree(h, keys)}
	case "OrthL":
		side := 1
		for side*side < size {
			side++
		}
		dense := make([][]int64, side)
		for i := range dense {
			dense[i] = make([]int64, side)
			for j := range dense[i] {
				if (i+j)%2 == 0 {
					dense[i][j] = int64(i*side + j + 1)
				}
			}
		}
		m := structures.Orthogonal(h, dense)
		var roots []*interp.Node
		for _, n := range append(append([]*interp.Node{}, m.RowHead...), m.ColHead...) {
			if n != nil {
				roots = append(roots, n)
			}
		}
		return roots
	case "LOLS":
		rows := 1
		for rows*rows < size {
			rows++
		}
		return []*interp.Node{structures.ListOfLists(h, rows, (size+rows-1)/rows)}
	case "TwoDRT":
		pts := make([]structures.Point, size/4+1)
		for i := range pts {
			pts[i] = structures.Point{X: int64(i * 13 % 997), Y: int64(i * 31 % 997)}
		}
		return []*interp.Node{structures.RangeTree(h, pts)}
	case "CirL":
		return []*interp.Node{structures.Circular(h, size)}
	}
	return nil
}

// renderAliasMatrix prints a matrix of oracle answers in the paper's alias
// matrix style.
func renderAliasMatrix(f *fixture, o alias.Oracle, vars []string) string {
	n := f.g.Loops[0].Branch.Succs[0] // inside the loop
	width := 4
	for _, v := range vars {
		if len(v) > width {
			width = len(v)
		}
	}
	cell := func(s string) string { return fmt.Sprintf(" %-*s |", width+2, s) }
	var b []byte
	b = append(b, cell("")...)
	for _, q := range vars {
		b = append(b, cell(q)...)
	}
	b = append(b, '\n')
	for _, p := range vars {
		b = append(b, cell(p)...)
		for _, q := range vars {
			e := ""
			if p == q {
				e = "="
			} else if o.MustAlias(n, p, q) {
				e = "="
			} else if o.MayAlias(n, p, q) {
				e = "=?"
			}
			b = append(b, cell(e)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}

// E3 regenerates the conservative alias matrix of Section 5.1.2: every
// entry between hd and the iterates of p is a possible alias.
func E3() *Report {
	f := load(ShiftSrc, "shift")
	o := alias.NewConservative(f.g)
	r := &Report{
		ID:    "E3",
		Title: "Section 5.1.2 — conservative alias matrix for the shift loop",
		Claim: "all entries denote some form of aliasing (=? everywhere)",
		Figures: []string{
			"Alias matrix AM inside the loop (conservative analysis):\n" +
				renderAliasMatrix(f, o, []string{"hd", "p"}),
		},
		Notes: []string{"matches the paper: AM[hd,p] = =? prevents every loop transformation"},
	}
	inLoop := f.g.Loops[0].Branch.Succs[0]
	r.Headers = []string{"pair", "may alias"}
	r.Rows = append(r.Rows, []string{"hd,p", yes(o.MayAlias(inLoop, "hd", "p"))})
	r.Rows = append(r.Rows, []string{"p_i,p_i+1", yes(o.LoopCarried(f.g.Loops[0], "p", "p"))})
	return r
}

// E4 regenerates the general path matrices of Section 5.1.2: before the
// loop, at the fixed point, and the primed-variable (cross-iteration) view.
func E4() *Report {
	f := load(ShiftSrc, "shift")
	res := pathmatrix.Analyze(f.g, f.info.Env)
	loop := f.g.Loops[0]

	// "Just before the loop": after p = hd->next.
	before := res.AtEntry()
	for _, n := range f.g.Nodes {
		if n.Kind == norm.NodeStmt && n.Stmt != nil && n.Stmt.String() == "p = hd->next" {
			before = res.AfterNode(n)
		}
	}
	fixed := res.LoopHead(loop)
	primed := res.IterationMatrix(loop)

	r := &Report{
		ID:    "E4",
		Title: "Section 5.1.2 — general path matrices (ADDS + GPM)",
		Claim: "PM(hd,p) = next+ at the fixed point; hd, p and p' are never aliases",
		Figures: []string{
			"PM just before the loop (after p = hd->next):\n" + before.String(),
			"PM at the loop fixed point:\n" + fixed.String(),
			"PM with primed (previous-iteration) variables after one body pass:\n" + primed.String(),
		},
		Headers: []string{"query", "result", "paper"},
	}
	r.Rows = append(r.Rows, []string{"PM(hd,p) before loop", before.Entry("hd", "p").String(), "next"})
	r.Rows = append(r.Rows, []string{"PM(hd,p) fixed point", fixed.Entry("hd", "p").String(), "next+"})
	r.Rows = append(r.Rows, []string{"PM(p',p)", primed.Entry("p"+pathmatrix.Shadow, "p").String(), "next"})
	r.Rows = append(r.Rows, []string{"MayAlias(hd,p)", yes(fixed.MayAlias("hd", "p")), "no"})
	r.Rows = append(r.Rows, []string{"abstraction valid", yes(fixed.Valid()), "yes"})
	return r
}

// E5 regenerates Figure 2: the dependence graph of the pseudo-assembly loop
// under conservative analysis (false carried deps S5->S2, S5->S3) and under
// ADDS + GPM (no carried memory deps).
func E5() *Report {
	f := load(ShiftSrc, "shift")
	cons := depgraph.Build(f.prog, f.loop, f.opts(alias.NewConservative(f.g)))
	gpm := depgraph.Build(f.prog, f.loop, f.opts(alias.NewGPM(f.g, f.info.Env)))

	r := &Report{
		ID:    "E5",
		Title: "Figure 2 — dependence graph for the pseudo-assembly loop",
		Claim: "conservative analysis adds false loop-carried deps store->loads; ADDS+GPM removes them",
		Headers: []string{"analysis", "carried mem deps", "S5->S2 (false)",
			"S5->S3 (false)", "S6->S1 on p (real)"},
		Figures: []string{cons.String(), gpm.String()},
	}
	row := func(g *depgraph.Graph) []string {
		return []string{
			g.Oracle,
			fmt.Sprintf("%d", len(g.CarriedMemEdges())),
			yes(g.HasEdge(4, 1, depgraph.Flow, true)),
			yes(g.HasEdge(4, 2, depgraph.Flow, true)),
			yes(g.HasEdge(5, 0, depgraph.Flow, true)),
		}
	}
	r.Rows = append(r.Rows, row(cons), row(gpm))
	r.Notes = append(r.Notes,
		"body numbering is 0-based: S0 test, S1 load p->x, S2 load hd->x, S3 sub, S4 store, S5 advance, S6 goto")
	return r
}

// E8 compares k-limited storage graphs with ADDS+GPM on the build-then-
// traverse program: the k-limit's summary cycle makes the traversal look
// possibly-revisiting for every k, while the declaration proves advance.
func E8() *Report {
	src := TwoWayDecl + `
void buildwalk(int n) {
    TwoWayLL *hd, *p, *tmp;
    hd = NULL;
    while (n > 0) {
        tmp = new TwoWayLL;
        tmp->next = hd;
        if (hd != NULL) {
            hd->prev = tmp;
        }
        hd = tmp;
        n = n - 1;
    }
    p = hd;
    while (p != NULL) {
        p = p->next;
    }
}
`
	f := load(src, "buildwalk")
	traverse := f.g.Loops[1]
	r := &Report{
		ID:    "E8",
		Title: "k-limited graphs vs ADDS+GPM (Section 1.2's criticism)",
		Claim: "k-limited approximation introduces cycles: list-like structures cannot be distinguished from cyclic ones",
		Headers: []string{"analysis", "p may revisit a node (carried p,p)",
			"hd aliases iterate of p"},
	}
	for _, k := range []int{1, 2, 3} {
		o := klimit.Analyze(f.g, f.info.Env, k)
		r.Rows = append(r.Rows, []string{
			o.Name(),
			yes(o.LoopCarried(traverse, "p", "p")),
			yes(o.MayAlias(traverse.Branch.Succs[0], "hd", "p")),
		})
	}
	gpm := alias.NewGPM(f.g, f.info.Env)
	r.Rows = append(r.Rows, []string{
		gpm.Name(),
		yes(gpm.LoopCarried(traverse, "p", "p")),
		yes(gpm.MayAlias(traverse.Branch.Succs[0], "hd", "p")),
	})
	r.Notes = append(r.Notes,
		"hd==p on the first traversal iteration, so 'hd aliases p' is genuinely yes for all analyses;",
		"the k-limited failure is the carried p,p column: it cannot prove the loop advances")
	return r
}
