package exper

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun exercises every experiment end to end and checks a
// few load-bearing cells against the paper's claims.
func TestAllExperimentsRun(t *testing.T) {
	reports := All()
	if len(reports) != 10 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Errorf("report missing metadata: %+v", r)
		}
		if s := r.Format(); !strings.Contains(s, r.ID) {
			t.Errorf("%s: Format missing id", r.ID)
		}
	}
}

func findRow(r *Report, key string) []string {
	for _, row := range r.Rows {
		if strings.Contains(row[0], key) || (len(row) > 1 && strings.Contains(row[1], key)) {
			return row
		}
	}
	return nil
}

func TestE1Contrast(t *testing.T) {
	r := E1()
	var cons, gpm []string
	for _, row := range r.Rows {
		switch row[0] {
		case "conservative":
			cons = row
		case "adds+gpm":
			gpm = row
		}
	}
	if cons == nil || gpm == nil {
		t.Fatalf("rows: %v", r.Rows)
	}
	if cons[1] != "no" || cons[2] != "no" {
		t.Errorf("conservative row = %v, want no/no", cons)
	}
	if gpm[1] != "yes" || gpm[2] != "yes" {
		t.Errorf("gpm row = %v, want yes/yes", gpm)
	}
}

func TestE2NoViolations(t *testing.T) {
	r := E2()
	if len(r.Rows) != 18 { // 6 structures x 3 sizes
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[3] != "0" {
			t.Errorf("%s size %s: %s violations", row[0], row[1], row[3])
		}
	}
}

func TestE3AllMaybeAliases(t *testing.T) {
	r := E3()
	if row := findRow(r, "hd,p"); row == nil || row[1] != "yes" {
		t.Errorf("conservative must alias hd,p: %v", r.Rows)
	}
	if !strings.Contains(r.Figures[0], "=?") {
		t.Errorf("alias matrix missing =? entries:\n%s", r.Figures[0])
	}
}

func TestE4MatchesPaper(t *testing.T) {
	r := E4()
	checks := map[string]string{
		"PM(hd,p) before loop": "next",
		"PM(hd,p) fixed point": "next+",
		"PM(p',p)":             "next",
		"MayAlias(hd,p)":       "no",
		"abstraction valid":    "yes",
	}
	for key, want := range checks {
		row := findRow(r, key)
		if row == nil {
			t.Errorf("row %q missing", key)
			continue
		}
		if row[1] != want {
			t.Errorf("%s = %q, want %q", key, row[1], want)
		}
	}
}

func TestE5FalseDepsRemoved(t *testing.T) {
	r := E5()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	cons, gpm := r.Rows[0], r.Rows[1]
	if cons[2] != "yes" || cons[3] != "yes" {
		t.Errorf("conservative lacks the false carried deps: %v", cons)
	}
	if gpm[1] != "0" {
		t.Errorf("gpm should have 0 carried mem deps: %v", gpm)
	}
	if cons[4] != "yes" || gpm[4] != "yes" {
		t.Errorf("the real S6->S1 recurrence must survive both: %v %v", cons, gpm)
	}
}

func TestE6TheoreticalSpeedupFive(t *testing.T) {
	r := E6()
	if row := findRow(r, "theoretical speedup"); row == nil || row[1] != "5.0" {
		t.Errorf("theoretical speedup row: %v", r.Rows)
	}
	if row := findRow(r, "initiation interval"); row == nil || row[1] != "1" {
		t.Errorf("II row: %v", r.Rows)
	}
	row := findRow(r, "measured VLIW speedup")
	if row == nil {
		t.Fatal("measured row missing")
	}
	var speedup float64
	if _, err := fmtSscanf(row[1], &speedup); err != nil || speedup < 4.5 {
		t.Errorf("measured speedup %v (row %v)", speedup, row)
	}
	if row := findRow(r, "conservative: pipelining legal"); row == nil || row[1] != "no" {
		t.Errorf("conservative contrast row: %v", r.Rows)
	}
}

// fmtSscanf parses the leading float of a cell like "6.43 (seq ...)".
func fmtSscanf(s string, f *float64) (int, error) {
	i := 0
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, err
	}
	*f = v
	return 1, nil
}

func TestE7UnrollShape(t *testing.T) {
	r := E7()
	// Find the n=100, k=3 row: speedup should be substantial (>= +25%).
	for _, row := range r.Rows {
		if row[0] == "100" && row[1] == "3" {
			if !strings.HasPrefix(row[4], "+") {
				t.Fatalf("k=3 speedup row: %v", row)
			}
			var pct float64
			if _, err := fmtSscanf(strings.TrimPrefix(row[4], "+"), &pct); err != nil || pct < 25 {
				t.Errorf("3-unroll speedup = %v%%, want >= 25%% (paper: 47%%)", pct)
			}
			return
		}
	}
	t.Fatal("n=100 k=3 row missing")
}

func TestE8KLimitFails(t *testing.T) {
	r := E8()
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "klimit") && row[1] != "yes" {
			t.Errorf("%s should fail to prove advance: %v", row[0], row)
		}
		if row[0] == "adds+gpm" && row[1] != "no" {
			t.Errorf("gpm should prove advance: %v", row)
		}
	}
}

func TestE9ValidityTimeline(t *testing.T) {
	r := E9()
	var afterBreak, afterRepair []string
	for _, row := range r.Rows {
		if strings.Contains(row[0], "dest->left = @t1") || strings.Contains(row[0], "dest->left =") {
			afterBreak = row
		}
		if strings.Contains(row[0], "src->left = NULL") {
			afterRepair = row
		}
	}
	if afterBreak == nil || afterRepair == nil {
		t.Fatalf("rows: %v", r.Rows)
	}
	if afterBreak[1] != "no" {
		t.Errorf("abstraction should be invalid after the move: %v", afterBreak)
	}
	if afterRepair[1] != "yes" {
		t.Errorf("abstraction should be valid after the repair: %v", afterRepair)
	}
}

func TestE10WidthSweep(t *testing.T) {
	r := E10()
	var pipelined bool
	var bestSpeedup float64
	for _, row := range r.Rows {
		if row[2] == "pipelined" {
			pipelined = true
			var s float64
			if _, err := fmtSscanf(row[5], &s); err == nil && s > bestSpeedup {
				bestSpeedup = s
			}
		}
	}
	if !pipelined {
		t.Fatal("no width was wide enough to pipeline")
	}
	if bestSpeedup < 4.5 {
		t.Errorf("best pipelined speedup = %.2f, want >= 4.5", bestSpeedup)
	}
}

// TestDefs keeps the registry metadata in sync with the Report literals:
// each Def must produce a report carrying the same id and title.
func TestDefs(t *testing.T) {
	defs := Defs()
	if len(defs) != 10 {
		t.Fatalf("got %d defs", len(defs))
	}
	for _, d := range defs {
		r := d.Run()
		if r.ID != d.ID {
			t.Errorf("def %s produced report id %s", d.ID, r.ID)
		}
		if r.Title != d.Title {
			t.Errorf("def %s title %q != report title %q", d.ID, d.Title, r.Title)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("e4") == nil || ByID("E10") == nil {
		t.Error("ByID lookup failed")
	}
	if ByID("E99") != nil {
		t.Error("bogus id matched")
	}
}
