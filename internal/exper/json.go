package exper

import "encoding/json"

// reportJSON is the wire form of a Report. Slices are normalized to empty
// (never null) so the encoding is stable across reports that lack a section.
type reportJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes"`
	Figures []string   `json:"figures"`
}

func nonNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// MarshalJSON renders the report in the encoding shared by addsd
// /v1/experiments responses and addsbench -format json.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		ID: r.ID, Title: r.Title, Claim: r.Claim,
		Headers: nonNil(r.Headers), Rows: nonNil(r.Rows),
		Notes: nonNil(r.Notes), Figures: nonNil(r.Figures),
	})
}
