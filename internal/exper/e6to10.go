package exper

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/core/pathmatrix"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/norm"
	"repro/internal/structures"
	"repro/internal/xform"
)

// E6 reproduces the Section 5.2 derivation: LICM, renaming, speculative
// hoisting, then pipelining. It reports the paper's theoretical speedup of
// 5 and the measured VLIW speedup.
func E6() *Report {
	f := load(ShiftSrc, "shift")
	gpm := alias.NewGPM(f.g, f.info.Env)
	opt := f.opts(gpm)

	p1, l1, hoisted := xform.LICM(f.prog, f.loop, opt)
	p2, l2, primed, _ := xform.RenameAdvance(p1, l1)
	p3, l3, _ := xform.SpeculativeHoist(p2, l2)
	info := xform.AnalyzePipeline(p3, l3, opt, 8)
	pl, err := xform.EmitPipelined(f.prog, f.loop, opt, 8)

	r := &Report{
		ID:      "E6",
		Title:   "Section 5.2 — software pipelining the shift loop",
		Claim:   "theoretical speedup of 5 (five-op body, II=1) on a wide machine",
		Headers: []string{"quantity", "value", "paper"},
	}
	r.Rows = append(r.Rows,
		[]string{"hoisted invariant loads", fmt.Sprintf("%d (%s)", len(hoisted), describe(hoisted)), "1 (hd->x)"},
		[]string{"renamed advance register", primed, "p'"},
		[]string{"body ops after transforms", fmt.Sprintf("%d", info.BodyOps), "5"},
		[]string{"initiation interval (II)", fmt.Sprintf("%d", info.II), "1"},
		[]string{"theoretical speedup", fmt.Sprintf("%.1f", info.Theoretic), "5"},
	)
	r.Figures = append(r.Figures, "Transformed loop (paper's final scalar form):\n"+p3.String())
	if err != nil {
		r.Notes = append(r.Notes, "pipelined emission failed: "+err.Error())
		return r
	}
	r.Figures = append(r.Figures, "Pipelined VLIW code (width 8):\n"+pl.Prog.String())

	// Measured speedup on the VLIW machine.
	n := 500
	seqCycles := runShiftVLIW(machine.Sequentialize(f.prog), n)
	pipCycles := runShiftVLIW(pl.Prog, n)
	r.Rows = append(r.Rows, []string{
		"measured VLIW speedup (n=500)",
		fmt.Sprintf("%.2f (seq %d / pipelined %d cycles)", float64(seqCycles)/float64(pipCycles), seqCycles, pipCycles),
		">= 5 in theory",
	})

	// And the conservative contrast.
	cons := xform.AnalyzePipeline(f.prog, f.loop, f.opts(alias.NewConservative(f.g)), 8)
	r.Rows = append(r.Rows, []string{
		"conservative: pipelining legal", yes(cons.OK), "no",
	})
	return r
}

func describe(ins []*ir.Instr) string {
	if len(ins) == 0 {
		return "-"
	}
	return ins[0].String()
}

func runShiftVLIW(p *machine.VLIWProgram, n int) int64 {
	h := interp.NewHeap()
	hd := structures.TwoWayList(h, nil, n)
	res, err := machine.RunVLIW(p, machine.DefaultVLIW(), h,
		map[string]machine.Word{"hd": machine.RefWord(hd)})
	if err != nil {
		panic("E6: " + err.Error())
	}
	return res.Cycles
}

// E7 reproduces the [HG92] unrolling experiment: speedup of k-unrolling the
// list initialization loop on the scalar machine (paper cites 47% for k=3,
// n=100 on MIPS).
func E7() *Report {
	f := load(InitSrc, "initlist")
	opt := f.opts(alias.NewGPM(f.g, f.info.Env))
	r := &Report{
		ID:      "E7",
		Title:   "[HG92] — loop unrolling on the scalar machine",
		Claim:   "47% speedup for 3-unrolling, list of 100 (MIPS)",
		Headers: []string{"n", "unroll", "cycles", "cycles/node", "speedup vs k=1"},
	}
	for _, n := range []int{10, 100, 1000} {
		var base int64
		for _, k := range []int{1, 2, 3, 4, 8} {
			u, err := xform.Unroll(f.prog, f.loop, k, opt)
			if err != nil {
				panic(err)
			}
			h := interp.NewHeap()
			hd := structures.TwoWayList(h, nil, n)
			res, err := machine.RunScalar(u, machine.DefaultScalar(), h,
				map[string]machine.Word{"p": machine.RefWord(hd)})
			if err != nil {
				panic(err)
			}
			if k == 1 {
				base = res.Cycles
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%.2f", float64(res.Cycles)/float64(n)),
				fmt.Sprintf("%+.0f%%", (float64(base)/float64(res.Cycles)-1)*100),
			})
		}
	}
	r.Notes = append(r.Notes,
		"scalar model: load-use delay 1 cycle, taken-branch penalty 1 cycle",
		"the unrolled form renames pointers and schedules advances early, as [HG92] describes")
	return r
}

// E9 reproduces Section 5.1.1's validation example: moving a subtree breaks
// the declared tree shape between the two stores and is repaired after.
func E9() *Report {
	src := `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
void move(PBinTree *dest, PBinTree *src) {
    dest->left = src->left;
    src->left = NULL;
}
`
	f := load(src, "move")
	res := pathmatrix.Analyze(f.g, f.info.Env)

	r := &Report{
		ID:      "E9",
		Title:   "Section 5.1.1 — abstraction validation across a subtree move",
		Claim:   "the abstraction is invalid between the stores and valid again after src->left = NULL",
		Headers: []string{"program point", "abstraction valid", "violations"},
	}
	for _, n := range f.g.Nodes {
		if n.Kind != norm.NodeStmt || n.Stmt == nil {
			continue
		}
		m := res.AfterNode(n)
		var vs []string
		for _, v := range m.Violations() {
			vs = append(vs, v.String())
		}
		viol := "-"
		if len(vs) > 0 {
			viol = fmt.Sprint(vs)
		}
		r.Rows = append(r.Rows, []string{
			"after " + n.Stmt.String(), yes(m.Valid()), viol,
		})
	}
	return r
}

// E10 sweeps VLIW widths for the shift loop: sequential issue, per-
// iteration compaction, and (when wide enough) the software-pipelined
// kernel — the machine-width sensitivity the paper's Section 5.2 alludes to
// ("the actual speedup depends heavily on the target machine").
func E10() *Report {
	f := load(ShiftSrc, "shift")
	opt := f.opts(alias.NewGPM(f.g, f.info.Env))

	r := &Report{
		ID:      "E10",
		Title:   "VLIW width sweep — compaction vs software pipelining",
		Claim:   "pipelining needs both width and the ADDS-derived independence; speedup jumps when the kernel fits",
		Headers: []string{"n", "width", "schedule", "cycles", "cycles/node", "speedup vs 1-wide"},
		Notes: []string{
			"short lists show the pipeline's prologue/drain overhead amortizing away",
		},
	}
	for _, n := range []int{10, 100, 1000} {
		seq := runShiftVLIW(machine.Sequentialize(f.prog), n)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), "1", "sequential", fmt.Sprintf("%d", seq),
			fmt.Sprintf("%.2f", float64(seq)/float64(n)), "1.00",
		})
		for _, w := range []int{2, 4, 6, 8, 12} {
			kind := "compacted"
			var cycles int64
			if pl, err := xform.EmitPipelined(f.prog, f.loop, opt, w); err == nil {
				kind = "pipelined"
				cycles = runShiftVLIW(pl.Prog, n)
			} else {
				cycles = runShiftVLIW(xform.Compact(f.prog, w), n)
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", w), kind,
				fmt.Sprintf("%d", cycles),
				fmt.Sprintf("%.2f", float64(cycles)/float64(n)),
				fmt.Sprintf("%.2f", float64(seq)/float64(cycles)),
			})
		}
	}
	return r
}
