// Package shape is the semantic model of ADDS declarations.
//
// It turns the syntactic TypeDecl of the front end into a queryable form:
// which dimension each recursive pointer field traverses, in which direction,
// which fields were declared together as a combined uniquely-forward group
// (Defs 4.7-4.8 of the paper), and which dimensions are independent
// (Def 4.9). The path matrix analysis, the validation pass, and the dynamic
// invariant checker all consult this model rather than the raw AST.
package shape

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/source/ast"
)

// Direction re-exports the AST direction for convenience.
type Direction = ast.Direction

// Direction values.
const (
	None            = ast.DirNone
	Unknown         = ast.DirUnknown
	Circular        = ast.DirCircular
	Backward        = ast.DirBackward
	Forward         = ast.DirForward
	UniquelyForward = ast.DirUniquelyForward
)

// DefaultDim is the implicit dimension used when a declaration names none
// (Section 3.3: "By default, a structure has one dimension D").
const DefaultDim = "D"

// Field describes one recursive pointer field of a type.
type Field struct {
	Name   string
	Target string    // name of the pointed-to record type
	Dir    Direction // Unknown if the declaration had no clause
	Dim    string    // dimension traversed; DefaultDim if none declared
	Group  int       // combined-declaration group id; -1 if declared alone
}

// Acyclic reports whether traversing this field can never revisit a node
// (Def 4.2 holds). True for forward and uniquely forward. It is also true
// for backward fields: by Def 4.5 a backward field retraces a forward
// dimension toward the origin, so repeated traversal reaches NULL.
func (f *Field) Acyclic() bool {
	switch f.Dir {
	case Forward, UniquelyForward, Backward:
		return true
	}
	return false
}

// Unique reports whether Def 4.3 holds: distinct nodes never reach the same
// node by one step of f.
func (f *Field) Unique() bool { return f.Dir == UniquelyForward }

// Type is the shape model of one declared record type.
type Type struct {
	Name     string
	Dims     []string // at least one (DefaultDim if none declared)
	IntField []string // integer data fields, in declaration order
	Fields   []*Field // recursive pointer fields, in declaration order
	indep    map[[2]string]bool
	byName   map[string]*Field

	// alongOnce lazily indexes Fields by (direction, dimension); the
	// transfer function queries ForwardAlong/BackwardAlong in its hot path
	// and must not allocate there. Fields are immutable once the type is
	// published, so building the index once is safe.
	alongOnce sync.Once
	fwdAlong  map[string][]*Field
	bwdAlong  map[string][]*Field
}

func (t *Type) buildAlong() {
	t.fwdAlong = map[string][]*Field{}
	t.bwdAlong = map[string][]*Field{}
	for _, f := range t.Fields {
		switch f.Dir {
		case Forward, UniquelyForward:
			t.fwdAlong[f.Dim] = append(t.fwdAlong[f.Dim], f)
		case Backward:
			t.bwdAlong[f.Dim] = append(t.bwdAlong[f.Dim], f)
		}
	}
}

// Env is the set of shape models for a program, keyed by type name.
type Env struct {
	Types map[string]*Type

	// fpOnce/fp memoize Fingerprint. An Env is immutable once published
	// (Check and Stripped both build fresh instances), so computing the
	// digest once is safe.
	fpOnce sync.Once
	fp     string
}

// Field returns the named recursive pointer field, or nil.
func (t *Type) Field(name string) *Field { return t.byName[name] }

// HasIntField reports whether name is a declared integer field.
func (t *Type) HasIntField(name string) bool {
	for _, n := range t.IntField {
		if n == name {
			return true
		}
	}
	return false
}

// Independent reports whether dimensions a and b were declared independent
// ("where a || b"). Dimensions are dependent unless declared otherwise
// (Def 4.10); a dimension is never independent of itself.
func (t *Type) Independent(a, b string) bool {
	if a == b {
		return false
	}
	return t.indep[[2]string{a, b}] || t.indep[[2]string{b, a}]
}

// SameGroup reports whether fields f and g were declared together in one
// combined uniquely-forward clause (Def 4.7/4.8), e.g. left and right of
// PBinTree.
func (t *Type) SameGroup(f, g string) bool {
	ff, gf := t.byName[f], t.byName[g]
	if ff == nil || gf == nil || ff.Group < 0 {
		return false
	}
	return ff.Group == gf.Group
}

// GroupOf returns the names of every field sharing a combined clause with f,
// including f itself. A field declared alone yields just {f}.
func (t *Type) GroupOf(f string) []string {
	ff := t.byName[f]
	if ff == nil {
		return nil
	}
	if ff.Group < 0 {
		return []string{f}
	}
	var out []string
	for _, g := range t.Fields {
		if g.Group == ff.Group {
			out = append(out, g.Name)
		}
	}
	return out
}

// ForwardAlong returns the fields traversing dim in the forward or uniquely
// forward direction. The result is cached and must not be mutated.
func (t *Type) ForwardAlong(dim string) []*Field {
	t.alongOnce.Do(t.buildAlong)
	return t.fwdAlong[dim]
}

// BackwardAlong returns the fields traversing dim backward. The result is
// cached and must not be mutated.
func (t *Type) BackwardAlong(dim string) []*Field {
	t.alongOnce.Do(t.buildAlong)
	return t.bwdAlong[dim]
}

// BackwardPartner returns a backward field along the same dimension as the
// forward field f (used for the Def 4.6 f-then-b cycle rule), or nil.
func (t *Type) BackwardPartner(f string) *Field {
	ff := t.byName[f]
	if ff == nil {
		return nil
	}
	bs := t.BackwardAlong(ff.Dim)
	if len(bs) == 0 {
		return nil
	}
	return bs[0]
}

// ForwardPartners returns the uniquely-forward fields along the same
// dimension as the backward field b (inverse of BackwardPartner).
func (t *Type) ForwardPartners(b string) []*Field {
	bf := t.byName[b]
	if bf == nil {
		return nil
	}
	var out []*Field
	for _, f := range t.ForwardAlong(bf.Dim) {
		if f.Dir == UniquelyForward {
			out = append(out, f)
		}
	}
	return out
}

// FieldsIndependentOf returns true when fields f and g traverse dimensions
// declared independent: a node reached forward by f from one place cannot be
// reached forward by g from another (Def 4.9a).
func (t *Type) FieldsIndependent(f, g string) bool {
	ff, gf := t.byName[f], t.byName[g]
	if ff == nil || gf == nil {
		return false
	}
	return t.Independent(ff.Dim, gf.Dim)
}

// String renders the model compactly for diagnostics.
func (t *Type) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", t.Name, strings.Join(t.Dims, ","))
	for _, f := range t.Fields {
		fmt.Fprintf(&b, " %s:%s/%s", f.Name, f.Dir, f.Dim)
		if f.Group >= 0 {
			fmt.Fprintf(&b, "(g%d)", f.Group)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Construction and well-formedness

// Problem is a well-formedness diagnostic for a declaration.
type Problem struct {
	Type string
	Msg  string
}

func (p Problem) Error() string { return fmt.Sprintf("type %s: %s", p.Type, p.Msg) }

// Build constructs the shape environment for a program and checks each
// declaration for well-formedness:
//
//   - every "along" dimension must be declared (or omitted, defaulting),
//   - a field may traverse only one dimension in one direction (enforced
//     syntactically), and each field name must be unique,
//   - a backward field requires a forward field along the same dimension
//     (Def 4.5),
//   - only uniquely forward clauses may declare combined groups,
//   - independence pairs must name declared, distinct dimensions,
//   - pointer fields must target declared record types.
func Build(prog *ast.Program) (*Env, []Problem) {
	env := &Env{Types: map[string]*Type{}}
	var probs []Problem
	bad := func(tn, format string, args ...any) {
		probs = append(probs, Problem{Type: tn, Msg: fmt.Sprintf(format, args...)})
	}

	declared := map[string]bool{}
	for _, td := range prog.Types {
		if declared[td.Name] {
			bad(td.Name, "redeclared type")
		}
		declared[td.Name] = true
	}

	for _, td := range prog.Types {
		t := &Type{
			Name:   td.Name,
			indep:  map[[2]string]bool{},
			byName: map[string]*Field{},
		}
		dims := map[string]bool{}
		for _, d := range td.Dims {
			if dims[d] {
				bad(td.Name, "dimension %s declared twice", d)
			}
			dims[d] = true
			t.Dims = append(t.Dims, d)
		}
		if len(t.Dims) == 0 {
			t.Dims = []string{DefaultDim}
			dims[DefaultDim] = true
		}
		for _, pr := range td.Indep {
			if pr[0] == pr[1] {
				bad(td.Name, "dimension %s declared independent of itself", pr[0])
				continue
			}
			for _, d := range pr {
				if !dims[d] {
					bad(td.Name, "independence clause names undeclared dimension %s", d)
				}
			}
			t.indep[pr] = true
		}

		group := 0
		for _, fd := range td.Fields {
			if !fd.Pointer {
				for _, n := range fd.Names {
					if t.HasIntField(n) || t.byName[n] != nil {
						bad(td.Name, "field %s redeclared", n)
					}
					t.IntField = append(t.IntField, n)
				}
				continue
			}
			if !declared[fd.TypeName] {
				bad(td.Name, "pointer field %s targets undeclared type %s",
					fd.Names[0], fd.TypeName)
			}
			dir := fd.Dir
			if dir == ast.DirNone {
				dir = Unknown
			}
			dim := fd.Dim
			if dim == "" {
				if len(td.Dims) == 1 {
					// A single declared dimension is unambiguous.
					dim = td.Dims[0]
				} else if len(td.Dims) == 0 {
					dim = DefaultDim
				} else if fd.Dir != ast.DirNone {
					bad(td.Name, "field %s has a direction but no dimension among %v",
						fd.Names[0], td.Dims)
					dim = td.Dims[0]
				} else {
					dim = td.Dims[0]
				}
			} else if !dims[dim] {
				bad(td.Name, "field %s traverses undeclared dimension %s",
					fd.Names[0], dim)
			}
			gid := -1
			if len(fd.Names) > 1 {
				if dir != UniquelyForward {
					bad(td.Name, "combined declaration of %v requires uniquely forward, got %s",
						fd.Names, dir)
				}
				gid = group
				group++
			}
			for _, n := range fd.Names {
				if t.byName[n] != nil || t.HasIntField(n) {
					bad(td.Name, "field %s redeclared", n)
					continue
				}
				f := &Field{Name: n, Target: fd.TypeName, Dir: dir, Dim: dim, Group: gid}
				t.Fields = append(t.Fields, f)
				t.byName[n] = f
			}
		}

		// Def 4.5: backward along d requires forward along d.
		for _, f := range t.Fields {
			if f.Dir == Backward && len(t.ForwardAlong(f.Dim)) == 0 {
				bad(td.Name, "field %s is backward along %s but no field is forward along %s (Def 4.5)",
					f.Name, f.Dim, f.Dim)
			}
		}
		env.Types[t.Name] = t
	}
	return env, probs
}

// MustBuild builds the environment and panics on any problem. For fixtures.
func MustBuild(prog *ast.Program) *Env {
	env, probs := Build(prog)
	if len(probs) > 0 {
		msgs := make([]string, len(probs))
		for i, p := range probs {
			msgs[i] = p.Error()
		}
		sort.Strings(msgs)
		panic("shape.MustBuild: " + strings.Join(msgs, "; "))
	}
	return env
}

// Type returns the model for a type name, or nil.
func (e *Env) Type(name string) *Type {
	if e == nil {
		return nil
	}
	return e.Types[name]
}

// Stripped returns a copy of the environment with every direction demoted to
// Unknown and every independence clause and group removed. This models the
// "classic" analysis that has no ADDS information (the paper's Section 3.1
// observation that CirL's default declaration "is equivalent to saying
// nothing at all").
func (e *Env) Stripped() *Env {
	out := &Env{Types: map[string]*Type{}}
	for name, t := range e.Types {
		nt := &Type{
			Name:     t.Name,
			Dims:     []string{DefaultDim},
			IntField: append([]string(nil), t.IntField...),
			indep:    map[[2]string]bool{},
			byName:   map[string]*Field{},
		}
		for _, f := range t.Fields {
			nf := &Field{Name: f.Name, Target: f.Target, Dir: Unknown, Dim: DefaultDim, Group: -1}
			nt.Fields = append(nt.Fields, nf)
			nt.byName[f.Name] = nf
		}
		out.Types[name] = nt
	}
	return out
}
