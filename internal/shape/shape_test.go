package shape

import (
	"strings"
	"testing"

	"repro/internal/source/ast"
	"repro/internal/source/parser"
)

// paperDecls holds all six declarations from Section 3 of the paper.
const paperDecls = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
type OrthL [X] [Y] {
    int data;
    OrthL *across is uniquely forward along X;
    OrthL *back is backward along X;
    OrthL *down is uniquely forward along Y;
    OrthL *up is backward along Y;
};
type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};
type TwoDRT [down] [sub] [leaves] where sub || down, sub || leaves {
    int data;
    TwoDRT *left, *right is uniquely forward along down;
    TwoDRT *subtree is uniquely forward along sub;
    TwoDRT *next is uniquely forward along leaves;
    TwoDRT *prev is backward along leaves;
};
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

func buildPaper(t *testing.T) *Env {
	t.Helper()
	env, probs := Build(parser.MustParse(paperDecls))
	if len(probs) > 0 {
		t.Fatalf("paper declarations not well-formed: %v", probs[0])
	}
	return env
}

func TestTwoWayLLModel(t *testing.T) {
	env := buildPaper(t)
	ll := env.Type("TwoWayLL")
	if ll == nil {
		t.Fatal("TwoWayLL missing")
	}
	next := ll.Field("next")
	if !next.Unique() || !next.Acyclic() || next.Dim != "X" {
		t.Errorf("next = %+v", next)
	}
	prev := ll.Field("prev")
	if prev.Dir != Backward || !prev.Acyclic() {
		t.Errorf("prev = %+v", prev)
	}
	if bp := ll.BackwardPartner("next"); bp == nil || bp.Name != "prev" {
		t.Errorf("BackwardPartner(next) = %v", bp)
	}
	if fps := ll.ForwardPartners("prev"); len(fps) != 1 || fps[0].Name != "next" {
		t.Errorf("ForwardPartners(prev) = %v", fps)
	}
	if !ll.HasIntField("data") || ll.HasIntField("next") {
		t.Error("int field classification wrong")
	}
}

func TestPBinTreeGroups(t *testing.T) {
	env := buildPaper(t)
	bt := env.Type("PBinTree")
	if !bt.SameGroup("left", "right") {
		t.Error("left/right should share a combined group")
	}
	if bt.SameGroup("left", "parent") {
		t.Error("left/parent should not share a group")
	}
	g := bt.GroupOf("left")
	if len(g) != 2 {
		t.Errorf("GroupOf(left) = %v", g)
	}
	if got := bt.GroupOf("parent"); len(got) != 1 || got[0] != "parent" {
		t.Errorf("GroupOf(parent) = %v", got)
	}
}

func TestOrthLDependentDims(t *testing.T) {
	env := buildPaper(t)
	ol := env.Type("OrthL")
	if ol.Independent("X", "Y") {
		t.Error("OrthL dims must be dependent by default (Def 4.10)")
	}
	if ol.FieldsIndependent("across", "down") {
		t.Error("across/down must be dependent in OrthL")
	}
}

func TestLOLSIndependentDims(t *testing.T) {
	env := buildPaper(t)
	ll := env.Type("LOLS")
	if !ll.Independent("X", "Y") || !ll.Independent("Y", "X") {
		t.Error("LOLS X || Y must be independent both ways")
	}
	if ll.Independent("X", "X") {
		t.Error("a dimension is never independent of itself")
	}
	if !ll.FieldsIndependent("across", "down") {
		t.Error("across/down must be independent in LOLS")
	}
}

func TestTwoDRTPartialIndependence(t *testing.T) {
	env := buildPaper(t)
	rt := env.Type("TwoDRT")
	if !rt.Independent("sub", "down") || !rt.Independent("sub", "leaves") {
		t.Error("sub must be independent of down and leaves")
	}
	if rt.Independent("down", "leaves") {
		t.Error("down and leaves are dependent (each leaf reachable along both)")
	}
}

func TestCircularNotAcyclic(t *testing.T) {
	env := buildPaper(t)
	cl := env.Type("CirL")
	next := cl.Field("next")
	if next.Acyclic() {
		t.Error("circular field must not be acyclic")
	}
	if next.Unique() {
		t.Error("circular field is not uniquely forward")
	}
}

func TestDefaultDimension(t *testing.T) {
	src := `
type BinTree {
    int data;
    BinTree *left;
    BinTree *right;
};
`
	env, probs := Build(parser.MustParse(src))
	if len(probs) > 0 {
		t.Fatalf("probs: %v", probs)
	}
	bt := env.Type("BinTree")
	if len(bt.Dims) != 1 || bt.Dims[0] != DefaultDim {
		t.Errorf("dims = %v", bt.Dims)
	}
	if bt.Field("left").Dir != Unknown {
		t.Errorf("left dir = %v, want Unknown default", bt.Field("left").Dir)
	}
}

func TestDef45BackwardRequiresForward(t *testing.T) {
	src := `
type Bad [X] {
    int data;
    Bad *prev is backward along X;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want Def 4.5 violation")
	}
	if !strings.Contains(probs[0].Msg, "Def 4.5") {
		t.Errorf("msg = %q", probs[0].Msg)
	}
}

func TestCombinedRequiresUniquelyForward(t *testing.T) {
	src := `
type Bad [X] {
    Bad *a, *b is forward along X;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want combined-group violation")
	}
}

func TestUndeclaredDimension(t *testing.T) {
	src := `
type Bad [X] {
    Bad *f is forward along Z;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want undeclared-dimension problem")
	}
}

func TestUndeclaredTargetType(t *testing.T) {
	src := `
type Bad [X] {
    Mystery *f is forward along X;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want undeclared-target problem")
	}
}

func TestRedeclaredField(t *testing.T) {
	src := `
type Bad [X] {
    int data;
    Bad *data is forward along X;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want redeclared-field problem")
	}
}

func TestIndependenceNamesUndeclaredDim(t *testing.T) {
	src := `
type Bad [X] where X || Q {
    Bad *f is forward along X;
};
`
	_, probs := Build(parser.MustParse(src))
	if len(probs) == 0 {
		t.Fatal("want undeclared-dim problem in where clause")
	}
}

func TestStripped(t *testing.T) {
	env := buildPaper(t)
	st := env.Stripped()
	ll := st.Type("TwoWayLL")
	if ll.Field("next").Dir != Unknown {
		t.Error("stripped next must be Unknown")
	}
	if ll.Field("next").Acyclic() {
		t.Error("stripped next must not be acyclic")
	}
	lols := st.Type("LOLS")
	if lols.Independent("X", "Y") {
		t.Error("stripped env must drop independence")
	}
	bt := st.Type("PBinTree")
	if bt.SameGroup("left", "right") {
		t.Error("stripped env must drop groups")
	}
	// Original must be untouched.
	if env.Type("TwoWayLL").Field("next").Dir != UniquelyForward {
		t.Error("Stripped mutated the original environment")
	}
}

func TestEnvNilSafety(t *testing.T) {
	var e *Env
	if e.Type("anything") != nil {
		t.Error("nil Env must return nil Type")
	}
}

func TestDirectionOrderingMatchesAST(t *testing.T) {
	// The analysis relies on these being distinct values.
	dirs := []Direction{None, Unknown, Circular, Backward, Forward, UniquelyForward}
	seen := map[Direction]bool{}
	for _, d := range dirs {
		if seen[d] {
			t.Fatalf("duplicate direction value %v", d)
		}
		seen[d] = true
	}
	if UniquelyForward != ast.DirUniquelyForward {
		t.Error("aliasing broken")
	}
}

func TestStringRendering(t *testing.T) {
	env := buildPaper(t)
	s := env.Type("PBinTree").String()
	for _, want := range []string{"PBinTree[down]", "left:uniquely forward/down", "(g0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
