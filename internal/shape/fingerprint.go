package shape

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// Fingerprint returns a digest of every shape-relevant declaration in the
// environment: type names, dimensions, integer fields, pointer fields with
// their direction/dimension/group, and independence pairs. Two environments
// with equal fingerprints drive the transfer functions identically, so the
// digest is safe to use in cross-run memoization keys. A nil Env
// fingerprints to "".
func (e *Env) Fingerprint() string {
	if e == nil {
		return ""
	}
	e.fpOnce.Do(func() {
		names := make([]string, 0, len(e.Types))
		for n := range e.Types {
			names = append(names, n)
		}
		sort.Strings(names)

		var b strings.Builder
		for _, n := range names {
			t := e.Types[n]
			b.WriteString("type\x1f")
			b.WriteString(t.Name)
			b.WriteByte('\x1f')
			for _, d := range t.Dims {
				b.WriteString(d)
				b.WriteByte('\x1e')
			}
			b.WriteByte('\x1f')
			for _, f := range t.IntField {
				b.WriteString(f)
				b.WriteByte('\x1e')
			}
			b.WriteByte('\x1f')
			for _, f := range t.Fields {
				b.WriteString(f.Name)
				b.WriteByte('\x1e')
				b.WriteString(f.Target)
				b.WriteByte('\x1e')
				b.WriteString(strconv.Itoa(int(f.Dir)))
				b.WriteByte('\x1e')
				b.WriteString(f.Dim)
				b.WriteByte('\x1e')
				b.WriteString(strconv.Itoa(f.Group))
				b.WriteByte('\x1d')
			}
			b.WriteByte('\x1f')
			pairs := make([]string, 0, len(t.indep))
			for pr := range t.indep {
				pairs = append(pairs, pr[0]+"\x1e"+pr[1])
			}
			sort.Strings(pairs)
			for _, pr := range pairs {
				b.WriteString(pr)
				b.WriteByte('\x1d')
			}
			b.WriteByte('\x1c')
		}
		sum := sha256.Sum256([]byte(b.String()))
		e.fp = hex.EncodeToString(sum[:])
	})
	return e.fp
}
