package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// peerAddr strips the scheme so the test server looks like a -peers entry.
func peerAddr(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestClientPeekHitMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cache/have" {
			w.Write([]byte(`{"cached":true}` + "\n")) //nolint:errcheck
			return
		}
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := NewClient(time.Second)
	body, found, err := c.Peek(context.Background(), peerAddr(ts), "have", nil)
	if err != nil || !found || !strings.Contains(string(body), "cached") {
		t.Fatalf("peek hit = %q, %v, %v", body, found, err)
	}
	body, found, err = c.Peek(context.Background(), peerAddr(ts), "missing", nil)
	if err != nil || found || body != nil {
		t.Fatalf("peek miss = %q, %v, %v; want clean miss", body, found, err)
	}
}

func TestClientPeekUnreachableIsError(t *testing.T) {
	// Grab a port, then close it: connection refused, not a miss.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(500 * time.Millisecond)
	_, found, err := c.Peek(context.Background(), addr, "k", nil)
	if err == nil || found {
		t.Fatalf("peek of dead peer = found=%v err=%v, want error", found, err)
	}
}

func TestClientForwardRelaysAndMarks(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) != "1" {
			t.Errorf("forwarded request missing %s header", ForwardedHeader)
		}
		if r.Header.Get("Traceparent") == "" {
			t.Error("extra headers not propagated")
		}
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"bad program"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := NewClient(time.Second)
	hdr := http.Header{"Traceparent": {"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01"}}
	status, body, err := c.Forward(context.Background(), peerAddr(ts),
		http.MethodPost, "/v1/analyze", []byte(`{"source":"x"}`), hdr)
	if err != nil {
		t.Fatal(err)
	}
	// 4xx is the peer's authoritative answer: relayed, not an error.
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), "bad program") {
		t.Fatalf("forward = %d %q", status, body)
	}
}

func TestClientForwardRetriesOnce(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := NewClient(time.Second)
	status, body, err := c.Forward(context.Background(), peerAddr(ts),
		http.MethodPost, "/v1/analyze", []byte(`{}`), nil)
	if err != nil || status != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("forward after retry = %d %q %v", status, body, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one retry)", calls.Load())
	}
}

func TestClientForwardGivesUpAfterRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := NewClient(time.Second)
	_, _, err := c.Forward(context.Background(), peerAddr(ts),
		http.MethodPost, "/v1/analyze", []byte(`{}`), nil)
	if err == nil {
		t.Fatal("persistent 5xx must surface as an error (local fallback)")
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want exactly 2", calls.Load())
	}
}
