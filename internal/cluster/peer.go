package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ForwardedHeader marks a request that already made one cluster hop. A
// shard receiving it always answers locally — whatever its own ring says —
// so a stale or disagreeing peer list can never bounce a request around the
// cluster.
const ForwardedHeader = "X-Adds-Forwarded"

// DefaultPeerTimeout bounds one peer attempt. Peers are LAN/localhost
// neighbors serving cache lookups and small analyses; anything slower than
// this is better served by computing locally.
const DefaultPeerTimeout = 2 * time.Second

// maxPeerBody bounds how much of a peer response the client will buffer.
// Responses are the daemon's own JSON bodies, which its -max-body admission
// already keeps small; the cap only guards against a confused endpoint.
const maxPeerBody = 64 << 20

// Client speaks the inter-shard protocol: GET /v1/cache/{key} to peek a
// peer's result cache, and verbatim request forwarding to a key's owner.
// Every transport failure is retried exactly once (fresh attempt budget);
// after that the caller falls back to local compute.
type Client struct {
	hc *http.Client
}

// NewClient builds a peer client whose individual attempts are bounded by
// timeout (≤ 0 selects DefaultPeerTimeout).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Client{hc: &http.Client{Timeout: timeout}}
}

// Peek asks peer whether its result cache holds key. It returns
// (body, true) on a cache hit, (nil, false) with a nil error on a clean
// miss (404), and an error for anything else — including transport
// failures after the retry — so the caller can distinguish "the owner
// doesn't have it yet" from "the owner is unreachable".
func (c *Client) Peek(ctx context.Context, peer, key string, hdr http.Header) ([]byte, bool, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			"http://"+peer+"/v1/cache/"+key, nil)
		if err != nil {
			return nil, false, err
		}
		copyHeader(req.Header, hdr)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
		resp.Body.Close()
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusOK:
			return body, true, nil
		case resp.StatusCode == http.StatusNotFound:
			return nil, false, nil
		default:
			// An unexpected status (peer mid-shutdown, misrouted) is an
			// error, not a miss: the caller should not conclude the owner
			// has no result.
			lastErr = fmt.Errorf("cluster: peek %s: unexpected status %d", peer, resp.StatusCode)
		}
	}
	return nil, false, fmt.Errorf("cluster: peek %s: %w", peer, lastErr)
}

// Forward sends the request body to its owning peer and returns the peer's
// status and body verbatim. Transport errors and 5xx answers are retried
// once; a 5xx after the retry is returned as an error so the caller falls
// back to local compute instead of relaying a peer's internal failure.
// Client-level statuses (4xx) are the peer's authoritative answer for this
// request and are relayed as-is.
func (c *Client) Forward(ctx context.Context, peer, method, path string, body []byte, hdr http.Header) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, "http://"+peer+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set(ForwardedHeader, "1")
		copyHeader(req.Header, hdr)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
		resp.Body.Close()
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("cluster: forward %s: status %d", peer, resp.StatusCode)
		default:
			return resp.StatusCode, respBody, nil
		}
	}
	return 0, nil, fmt.Errorf("cluster: forward %s: %w", peer, lastErr)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
