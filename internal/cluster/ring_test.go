package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// sampleKeys builds a deterministic keyspace sample shaped like service.Key
// output (hex content hashes are uniform, and keyHash rehashes anyway).
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// Same peers ⇒ byte-identical placement, regardless of the order or
// spacing the peer list arrives in: this is what lets N processes agree on
// ownership with no coordination.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := sampleKeys(5000)
	orders := [][]string{
		{"a:1", "b:2", "c:3"},
		{"c:3", "a:1", "b:2"},
		{" b:2", "c:3 ", "a:1"}, // whitespace must not change identity
	}
	var want []string
	for oi, peers := range orders {
		r, err := New(peers, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(keys))
		for i, k := range keys {
			got[i] = r.Owner(k)
		}
		if oi == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v produced a different placement", peers)
		}
	}
	// A freshly built ring in a "different process" (new allocation) agrees.
	r2, _ := New([]string{"a:1", "b:2", "c:3"}, 0)
	for i, k := range keys {
		if r2.Owner(k) != want[i] {
			t.Fatalf("fresh ring disagrees on %s: %s vs %s", k, r2.Owner(k), want[i])
		}
	}
}

func TestRingDistribution(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3", "d:4"}
	r, err := New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := sampleKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	// With 128 vnodes each share should be near 1/4; allow a wide band.
	for _, p := range peers {
		share := float64(counts[p]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("peer %s owns %.1f%% of the keyspace: %v", p, 100*share, counts)
		}
	}
}

// Adding one peer to an N-ring must move only ~1/(N+1) of the keyspace,
// and every moved key must move TO the new peer (consistent hashing's
// defining property — a rebalance never shuffles keys between old peers).
func TestRingRebalanceAdd(t *testing.T) {
	keys := sampleKeys(20000)
	old, _ := New([]string{"a:1", "b:2", "c:3", "d:4"}, 0)
	grown, _ := New([]string{"a:1", "b:2", "c:3", "d:4", "e:5"}, 0)
	moved := 0
	for _, k := range keys {
		was, is := old.Owner(k), grown.Owner(k)
		if was == is {
			continue
		}
		if is != "e:5" {
			t.Fatalf("key %s moved %s -> %s, not to the new peer", k, was, is)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	// Expect ~1/5 = 20%; vnode variance keeps it well inside [8%, 35%].
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("adding 1 of 5 peers moved %.1f%% of keys, want ~20%%", 100*frac)
	}
}

// Removing a peer moves exactly that peer's keys; everything else stays.
func TestRingRebalanceRemove(t *testing.T) {
	keys := sampleKeys(20000)
	full, _ := New([]string{"a:1", "b:2", "c:3", "d:4"}, 0)
	shrunk, _ := New([]string{"a:1", "b:2", "d:4"}, 0)
	for _, k := range keys {
		was, is := full.Owner(k), shrunk.Owner(k)
		if was == "c:3" {
			if is == "c:3" {
				t.Fatalf("key %s still owned by removed peer", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though its owner was not removed", k, was, is)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty peer list must be rejected")
	}
	if _, err := New([]string{"", "  "}, 0); err == nil {
		t.Error("blank-only peer list must be rejected")
	}
	if _, err := New([]string{"a:1", "a:1"}, 0); err == nil {
		t.Error("duplicate peers must be rejected")
	}
}

func TestRingHas(t *testing.T) {
	r, _ := New([]string{"b:2", "a:1"}, 4)
	if !r.Has("a:1") || !r.Has("b:2") {
		t.Error("Has must report configured peers")
	}
	if r.Has("c:3") {
		t.Error("Has must reject unknown peers")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if got := r.Peers(); !reflect.DeepEqual(got, []string{"a:1", "b:2"}) {
		t.Errorf("Peers = %v, want sorted [a:1 b:2]", got)
	}
}
