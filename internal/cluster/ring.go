// Package cluster is the scale-out layer behind addsd -peers: a
// consistent-hash ring that partitions the content-addressed cache keyspace
// across N addsd processes, and a small HTTP client for the two inter-shard
// operations (cache peek, request forward) with a short timeout and a
// single retry.
//
// Placement is deterministic by construction: the ring is built from the
// sorted, deduplicated peer list with a fixed number of virtual nodes per
// peer, every ring point is the SHA-256 of peer⫶vnode, and keys (already
// SHA-256 hex strings from service.Key) are rehashed the same way — so two
// processes given the same -peers flag compute byte-identical placement
// with no coordination, and adding or removing one peer moves only ~1/N of
// the keyspace.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the per-peer vnode count. 128 points per peer
// keeps the owned-share imbalance of a small cluster within a few percent
// while the whole ring for a dozen peers still fits in one cache line scan.
const DefaultVirtualNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	peer string
	vn   int
}

// Ring maps content-address keys onto peers by consistent hashing.
// Immutable after New; safe for concurrent use.
type Ring struct {
	peers  []string
	points []point
}

// New builds a ring over the peer addresses with vnodes virtual nodes per
// peer (vnodes < 1 selects DefaultVirtualNodes). Peers are trimmed,
// deduplicated, and sorted, so every process handed the same set — in any
// order, with any spacing — builds the identical ring.
func New(peers []string, vnodes int) (*Ring, error) {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var clean []string
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		clean = append(clean, p)
	}
	if len(clean) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	sort.Strings(clean)
	r := &Ring{peers: clean, points: make([]point, 0, len(clean)*vnodes)}
	for _, p := range clean {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: pointHash(p, i), peer: p, vn: i})
		}
	}
	// Full-tuple ordering: a 64-bit collision between two peers' points is
	// astronomically unlikely, but the tie-break keeps even that case
	// deterministic across processes.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.peer != b.peer {
			return a.peer < b.peer
		}
		return a.vn < b.vn
	})
	return r, nil
}

// pointHash places one virtual node: the first 8 bytes of
// SHA-256("peer\x00vnode").
func pointHash(peer string, vn int) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vn)))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// keyHash places a key. Keys from service.Key are already uniform SHA-256
// hex, but rehashing makes Owner total over arbitrary strings.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer that owns key: the first ring point at or after
// the key's hash, wrapping past the top of the ring.
func (r *Ring) Owner(key string) string {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the sorted peer list the ring was built from. The slice is
// shared; callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Len returns the number of peers.
func (r *Ring) Len() int { return len(r.peers) }

// Has reports whether addr is one of the ring's peers.
func (r *Ring) Has(addr string) bool {
	i := sort.SearchStrings(r.peers, addr)
	return i < len(r.peers) && r.peers[i] == addr
}
