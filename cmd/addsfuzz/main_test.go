package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/adds"
	"repro/internal/difftest"
)

// TestRunCleanCampaign: a small campaign on a healthy tree exits 0 and
// prints a well-formed report with zero divergences.
func TestRunCleanCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-seed", "1", "-budget", "12", "-jobs", "2"}, &out, &errb)
	if code != adds.ExitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
	var rep difftest.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Programs != 12 || len(rep.Divergences) != 0 {
		t.Fatalf("programs = %d, divergences = %d", rep.Programs, len(rep.Divergences))
	}
	if !strings.Contains(errb.String(), "execsPerSec") {
		t.Fatalf("stderr has no throughput record:\n%s", errb.String())
	}
}

// TestRunDeterministicReport: same flags, different -jobs, byte-identical
// stdout (the determinism acceptance criterion, at the CLI boundary).
func TestRunDeterministicReport(t *testing.T) {
	var a, b bytes.Buffer
	if code := run([]string{"-seed", "3", "-budget", "10", "-jobs", "1"}, &a, &bytes.Buffer{}); code != 0 {
		t.Fatalf("jobs=1 exit = %d", code)
	}
	if code := run([]string{"-seed", "3", "-budget", "10", "-jobs", "4"}, &b, &bytes.Buffer{}); code != 0 {
		t.Fatalf("jobs=4 exit = %d", code)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("report bytes differ across job counts")
	}
}

// TestRunCorpusDir: -corpus creates the directory even on a clean run.
func TestRunCorpusDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	if code := run([]string{"-budget", "2", "-profile", "list", "-corpus", dir}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("corpus dir missing: %v", err)
	}
}

// TestRunUsageErrors: flag misuse exits 2 without touching stdout.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-budget", "0"},
		{"-nonsense"},
		{"positional"},
		{"-profile", "nope", "-budget", "1"},
		{"-checks", "nope", "-budget", "1"},
	} {
		var out, errb bytes.Buffer
		code := run(args, &out, &errb)
		if code != adds.ExitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, adds.ExitUsage)
		}
		if out.Len() > 0 {
			t.Errorf("args %v: wrote to stdout on failure", args)
		}
	}
}

// TestRunChecksFlag restricts the campaign to one named check.
func TestRunChecksFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-budget", "4", "-checks", "consistency"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep difftest.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("divergences = %d", len(rep.Divergences))
	}
}
