// Command addsfuzz runs the generative differential-testing campaign: it
// generates random well-typed ADDS programs (internal/gen), pushes each
// through the difftest oracle pairs — interpreter traces vs. static alias
// oracles, original vs. transformed execution, sequential vs. parallel
// analysis, the SMG-lite vs. path-matrix cross-check, plus the addslint
// validation — and reports every divergence minimized and
// content-addressed. The smg check's may-alias disagreements are precision
// deltas: logged and reported (the "deltas" field), never failures.
//
// Usage:
//
//	addsfuzz -seed 1 -budget 5000 -par 4
//	addsfuzz -profile list -budget 1000 -corpus out/corpus
//	addsfuzz -budget 5000 -log-format json   # machine-readable progress
//
// The JSON triage report goes to stdout and is deterministic for a given
// (seed, budget, profile) whatever the job count; progress goes to stderr
// as structured slog records (programs, execs/sec, divergences so far).
// Exit status 0 means the campaign ran clean, 7 (ExitDivergence) that it
// found at least one divergence, 2 flag misuse, 1 internal failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"repro/adds"
	"repro/internal/cli"
	"repro/internal/difftest"
	"repro/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics are reported as a single line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addsfuzz: internal error: %v\n", r)
			status = adds.ExitInternal
		}
	}()

	fs := flag.NewFlagSet("addsfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "base seed; program i uses seed+i")
	budget := fs.Int("budget", 1000, "total number of generated programs")
	var jobs int
	fs.IntVar(&jobs, "par", 0, "parallel workers (0 = one per CPU)")
	fs.IntVar(&jobs, "jobs", 0, "alias for -par")
	profile := fs.String("profile", "", "comma-separated generation profiles (empty = all: "+profileNames()+")")
	corpus := fs.String("corpus", "", "directory for minimized repros and triage records")
	checks := fs.String("checks", "", "comma-separated checks (empty = all: "+strings.Join(difftest.AllChecks(), ",")+")")
	memo := fs.Bool("memo", true, "run the campaign with the transfer-function memo enabled")
	live := fs.Bool("live", false, "run the campaign with the interleaved liveness pass enabled")
	summaries := fs.Bool("summaries", true, "run the campaign with interprocedural call summaries enabled")
	lf := cli.RegisterLogFlags(fs, "text")
	if err := fs.Parse(args); err != nil {
		return adds.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: addsfuzz [flags]")
		return adds.ExitUsage
	}
	lg, err := lf.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "addsfuzz:", err)
		return cli.ExitCode(err)
	}
	if *budget <= 0 {
		fmt.Fprintln(stderr, "addsfuzz: -budget must be positive")
		return adds.ExitUsage
	}
	for _, name := range splitList(*profile) {
		if _, err := gen.ProfileByName(name); err != nil {
			fmt.Fprintln(stderr, "addsfuzz:", err)
			return adds.ExitUsage
		}
	}
	for _, name := range splitList(*checks) {
		if !slices.Contains(difftest.AllChecks(), name) {
			fmt.Fprintf(stderr, "addsfuzz: unknown check %q (have %s)\n", name, strings.Join(difftest.AllChecks(), ","))
			return adds.ExitUsage
		}
	}

	// Engine configuration for the whole campaign. -memo=false fuzzes the
	// unmemoized engine (the memo is supposed to be invisible, so campaigns
	// under both settings must stay equally clean); -live turns on the
	// interleaved liveness pass so its dead-row dropping gets adversarial
	// coverage, not just the checked-in testdata; -summaries=false falls back
	// to the all-args call havoc, so the calls profile pits summarized and
	// havoc-only analyses against the same interpreter traces.
	defer adds.SetEngineMemo(adds.SetEngineMemo(*memo))
	defer adds.SetEngineLiveness(adds.SetEngineLiveness(*live))
	defer adds.SetEngineSummaries(adds.SetEngineSummaries(*summaries))

	c := difftest.Campaign{
		Seed:      *seed,
		Budget:    *budget,
		Jobs:      jobs,
		Profiles:  splitList(*profile),
		CorpusDir: *corpus,
		Config:    difftest.Config{Checks: splitList(*checks)},
	}

	// Progress: a counter the ticker below renders at most once a second,
	// so worker throughput never blocks on terminal writes.
	var done atomic.Int64
	c.Progress = func(d, total int) { done.Store(int64(d)) }

	lg.Info("campaign start", "seed", *seed, "budget", *budget, "jobs", jobs,
		"profiles", *profile, "checks", *checks, "memo", *memo, "live", *live,
		"summaries", *summaries)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	quit := make(chan struct{})
	ticking := make(chan struct{})
	go func() {
		defer close(ticking)
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				d := done.Load()
				el := time.Since(start).Seconds()
				lg.Info("campaign progress", "programs", d, "budget", *budget,
					"execsPerSec", int64(float64(d)/el))
			}
		}
	}()

	rep, err := c.Run(ctx)
	close(quit)
	<-ticking
	if err != nil {
		fmt.Fprintln(stderr, "addsfuzz:", err)
		return adds.ExitCode(err)
	}

	el := time.Since(start)
	lg.Info("campaign done", "programs", rep.Programs,
		"elapsed", el.Round(time.Millisecond),
		"execsPerSec", int64(float64(rep.Programs)/el.Seconds()),
		"divergences", len(rep.Divergences))
	for _, d := range rep.Divergences {
		lg.Warn("divergence", "check", d.Check, "profile", d.Profile,
			"seed", d.Seed, "hash", d.Hash, "minHash", d.MinHash,
			"minStmts", d.MinStmts)
	}
	// Precision deltas are triage signal, not failures: they never affect
	// the exit status.
	kinds := make([]string, 0, len(rep.Deltas))
	for kind := range rep.Deltas {
		kinds = append(kinds, kind)
	}
	slices.Sort(kinds)
	for _, kind := range kinds {
		lg.Info("precision delta", "kind", kind, "count", rep.Deltas[kind])
	}

	js, err := difftest.MarshalReport(rep)
	if err != nil {
		fmt.Fprintln(stderr, "addsfuzz:", err)
		return adds.ExitInternal
	}
	if _, err := stdout.Write(js); err != nil {
		fmt.Fprintln(stderr, "addsfuzz:", err)
		return adds.ExitInternal
	}
	if len(rep.Divergences) > 0 {
		fmt.Fprintf(stderr, "addsfuzz: %v\n", adds.ErrDivergence)
		return adds.ExitCode(adds.ErrDivergence)
	}
	return adds.ExitOK
}

func profileNames() string {
	var names []string
	for _, p := range gen.Profiles() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ",")
}

// splitList parses a comma-separated flag into a clean slice (nil when
// empty, so downstream defaults apply).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
