// Command addsbench regenerates the paper's evaluation artifacts (the
// experiment index E1-E10 in DESIGN.md): worked path matrices, dependence
// graphs, the pipelining derivation with theoretical and measured speedups,
// the unrolling sweep, and the baseline comparisons.
//
// Usage:
//
//	addsbench            # run every experiment
//	addsbench E4 E6      # run selected experiments
//	addsbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/adds"
)

func main() {
	list := flag.Bool("list", false, "list experiments without running them")
	flag.Parse()

	if *list {
		for _, r := range adds.Experiments() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, r := range adds.Experiments() {
			fmt.Println(r.Format())
		}
		return
	}
	status := 0
	for _, id := range ids {
		r := adds.Experiment(id)
		if r == nil {
			fmt.Fprintf(os.Stderr, "addsbench: unknown experiment %q (try -list)\n", id)
			status = 1
			continue
		}
		fmt.Println(r.Format())
	}
	os.Exit(status)
}
