// Command addsbench regenerates the paper's evaluation artifacts (the
// experiment index E1-E10 in DESIGN.md): worked path matrices, dependence
// graphs, the pipelining derivation with theoretical and measured speedups,
// the unrolling sweep, and the baseline comparisons.
//
// Usage:
//
//	addsbench            # run every experiment
//	addsbench E4 E6      # run selected experiments
//	addsbench -par 4     # run experiments concurrently (same output)
//	addsbench -list      # list experiment ids and titles
//	addsbench -format json E4
//	addsbench -bench -format json -label pr > BENCH_pr.json
//	addsbench -compare BENCH_baseline.json BENCH_pr.json -threshold 15
//
// Exit codes follow the shared adds convention: 0 ok, 1 internal or unknown
// experiment, 2 flag misuse; typed facade errors surfacing from experiment
// code keep their shared codes via adds.ExitCode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/adds"
	"repro/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics are reported as a single line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addsbench: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("addsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments without running them")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	bench := fs.Bool("bench", false, "measure experiments instead of printing reports")
	benchtime := fs.Duration("benchtime", 200*time.Millisecond, "minimum measuring time per bench rep")
	reps := fs.Int("reps", 5, "bench reps per experiment (best rep wins)")
	label := fs.String("label", "local", "label recorded in the bench file")
	compare := fs.Bool("compare", false, "compare two bench JSON files (old new) and gate regressions")
	threshold := fs.Float64("threshold", 15, "allowed ns/op regression percentage for -compare")
	par := cli.RegisterPar(fs, "experiment")
	format := cli.RegisterFormat(fs, "text", "text", "json")
	lf := cli.RegisterLogFlags(fs, "text")
	if err := fs.Parse(args); err != nil {
		return adds.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "addsbench:", err)
		return cli.ExitCode(err)
	}
	if err := cli.CheckFormat("addsbench", *format, "text", "json"); err != nil {
		return fail(err)
	}
	lg, err := lf.Logger(stderr)
	if err != nil {
		return fail(err)
	}

	if *compare {
		paths := fs.Args()
		// Accept flags after the positionals too (`-compare old new -threshold 10`):
		// stdlib flag parsing stops at the first positional, so re-parse the rest.
		if len(paths) > 2 {
			if err := fs.Parse(paths[2:]); err != nil {
				return adds.ExitUsage
			}
			paths = append(paths[:2:2], fs.Args()...)
		}
		if len(paths) != 2 {
			fmt.Fprintln(stderr, "addsbench: -compare takes exactly two arguments: old.json new.json")
			return adds.ExitUsage
		}
		return runCompare(paths[0], paths[1], *threshold, stdout, stderr)
	}

	if *list {
		if *format == "json" {
			type row struct {
				ID    string `json:"id"`
				Title string `json:"title"`
			}
			rows := []row{}
			for _, d := range adds.ExperimentDefs() {
				rows = append(rows, row{ID: d.ID, Title: d.Title})
			}
			return writeIndentedJSON(stdout, stderr, fail, rows)
		}
		for _, d := range adds.ExperimentDefs() {
			fmt.Fprintf(stdout, "%-4s %s\n", d.ID, d.Title)
		}
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Resolve the requested ids (all of them when none are named) against the
	// registry before running anything.
	defs := adds.ExperimentDefs()
	byID := map[string]adds.ExperimentDef{}
	for _, d := range defs {
		byID[strings.ToUpper(d.ID)] = d
	}
	// The bench-only summary pseudo-experiments (SUMC/SUMW) are always
	// addressable by id; -bench runs them by default so the perf trajectory
	// records the warm/cold summary-cache delta.
	sumDefs := summaryBenchDefs()
	for _, d := range sumDefs {
		byID[strings.ToUpper(d.ID)] = d
	}
	toRun := defs
	if *bench {
		toRun = append(append([]adds.ExperimentDef{}, defs...), sumDefs...)
	}
	if ids := fs.Args(); len(ids) > 0 {
		toRun = nil
		for _, id := range ids {
			d, ok := byID[strings.ToUpper(id)]
			if !ok {
				fmt.Fprintf(stderr, "addsbench: unknown experiment %q (try -list)\n", id)
				status = 1
				continue
			}
			toRun = append(toRun, d)
		}
	}

	if *bench {
		bf := runBench(toRun, benchOptions{
			benchtime: *benchtime, reps: *reps, label: *label,
		}, stderr)
		if *format == "json" {
			if s := writeIndentedJSON(stdout, stderr, fail, bf); s != 0 {
				return s
			}
			return status
		}
		formatBenchText(stdout, bf)
		return status
	}

	// Run experiments with a bounded worker pool, buffering each report so
	// output order matches request order regardless of worker scheduling.
	workers, note := effectiveWorkers(*par, *cpuprofile != "", len(toRun))
	if note != "" {
		fmt.Fprintln(stderr, "addsbench:", note)
	}
	start := time.Now()
	reports := make([]*adds.Report, len(toRun))
	if workers <= 1 {
		for i, d := range toRun {
			reports[i] = d.Run()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		panics := make([]any, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[w] = r
						for range next { // keep the feeder unblocked
						}
					}
				}()
				for i := range next {
					reports[i] = toRun[i].Run()
				}
			}(w)
		}
		for i := range toRun {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p) // surface on the caller, where run's recover formats it
			}
		}
	}
	lg.Debug("experiments complete", "count", len(reports), "workers", workers,
		"elapsed", time.Since(start))

	if *format == "json" {
		if s := writeIndentedJSON(stdout, stderr, fail, reports); s != 0 {
			return s
		}
		return status
	}
	for _, rep := range reports {
		fmt.Fprintln(stdout, rep.Format())
	}
	return status
}

// effectiveWorkers bounds the worker pool. A CPU profile and a parallel run
// do not mix — pprof samples every goroutine into one profile, so -par N
// turns the per-experiment attribution into an unreadable interleaving; when
// both are requested the experiments run serially and the caller is told.
func effectiveWorkers(par int, profiling bool, n int) (workers int, note string) {
	workers = par
	if workers <= 0 || workers > n {
		workers = n
	}
	if profiling && workers > 1 {
		return 1, fmt.Sprintf("-cpuprofile forces serial execution (ignoring -par %d)", par)
	}
	return workers, ""
}

func writeIndentedJSON(stdout, stderr io.Writer, fail func(error) int, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return fail(err)
	}
	return 0
}
