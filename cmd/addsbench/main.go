// Command addsbench regenerates the paper's evaluation artifacts (the
// experiment index E1-E10 in DESIGN.md): worked path matrices, dependence
// graphs, the pipelining derivation with theoretical and measured speedups,
// the unrolling sweep, and the baseline comparisons.
//
// Usage:
//
//	addsbench            # run every experiment
//	addsbench E4 E6      # run selected experiments
//	addsbench -par 4     # run experiments concurrently (same output)
//	addsbench -list      # list experiment ids and titles
//
// Exit codes follow the shared adds convention: 0 ok, 1 internal or unknown
// experiment, 2 flag misuse; typed facade errors surfacing from experiment
// code keep their shared codes via adds.ExitCode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"sync"

	"repro/adds"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics are reported as a single line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addsbench: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("addsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments without running them")
	par := fs.Int("par", 1, "experiment worker count (0 = one per CPU)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	if err := fs.Parse(args); err != nil {
		return adds.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "addsbench:", err)
		return adds.ExitCode(err)
	}

	if *list {
		for _, d := range adds.ExperimentDefs() {
			fmt.Fprintf(stdout, "%-4s %s\n", d.ID, d.Title)
		}
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Resolve the requested ids (all of them when none are named) against the
	// registry before running anything.
	defs := adds.ExperimentDefs()
	byID := map[string]adds.ExperimentDef{}
	for _, d := range defs {
		byID[strings.ToUpper(d.ID)] = d
	}
	toRun := defs
	if ids := fs.Args(); len(ids) > 0 {
		toRun = nil
		for _, id := range ids {
			d, ok := byID[strings.ToUpper(id)]
			if !ok {
				fmt.Fprintf(stderr, "addsbench: unknown experiment %q (try -list)\n", id)
				status = 1
				continue
			}
			toRun = append(toRun, d)
		}
	}

	// Run experiments with a bounded worker pool, buffering each report so
	// output order matches request order regardless of worker scheduling.
	workers := *par
	if workers <= 0 {
		workers = len(toRun)
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}
	outputs := make([]string, len(toRun))
	if workers <= 1 {
		for i, d := range toRun {
			outputs[i] = d.Run().Format()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		panics := make([]any, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[w] = r
						for range next { // keep the feeder unblocked
						}
					}
				}()
				for i := range next {
					outputs[i] = toRun[i].Run().Format()
				}
			}(w)
		}
		for i := range toRun {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p) // surface on the caller, where run's recover formats it
			}
		}
	}
	for _, out := range outputs {
		fmt.Fprintln(stdout, out)
	}
	return status
}
