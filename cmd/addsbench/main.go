// Command addsbench regenerates the paper's evaluation artifacts (the
// experiment index E1-E10 in DESIGN.md): worked path matrices, dependence
// graphs, the pipelining derivation with theoretical and measured speedups,
// the unrolling sweep, and the baseline comparisons.
//
// Usage:
//
//	addsbench            # run every experiment
//	addsbench E4 E6      # run selected experiments
//	addsbench -par 4     # run experiments concurrently (same output)
//	addsbench -list      # list experiment ids and titles
//	addsbench -format json E4
//
// Exit codes follow the shared adds convention: 0 ok, 1 internal or unknown
// experiment, 2 flag misuse; typed facade errors surfacing from experiment
// code keep their shared codes via adds.ExitCode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/adds"
	"repro/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics are reported as a single line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addsbench: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("addsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments without running them")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	par := cli.RegisterPar(fs, "experiment")
	format := cli.RegisterFormat(fs, "text", "text", "json")
	lf := cli.RegisterLogFlags(fs, "text")
	if err := fs.Parse(args); err != nil {
		return adds.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "addsbench:", err)
		return cli.ExitCode(err)
	}
	if err := cli.CheckFormat("addsbench", *format, "text", "json"); err != nil {
		return fail(err)
	}
	lg, err := lf.Logger(stderr)
	if err != nil {
		return fail(err)
	}

	if *list {
		if *format == "json" {
			type row struct {
				ID    string `json:"id"`
				Title string `json:"title"`
			}
			rows := []row{}
			for _, d := range adds.ExperimentDefs() {
				rows = append(rows, row{ID: d.ID, Title: d.Title})
			}
			return writeIndentedJSON(stdout, stderr, fail, rows)
		}
		for _, d := range adds.ExperimentDefs() {
			fmt.Fprintf(stdout, "%-4s %s\n", d.ID, d.Title)
		}
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Resolve the requested ids (all of them when none are named) against the
	// registry before running anything.
	defs := adds.ExperimentDefs()
	byID := map[string]adds.ExperimentDef{}
	for _, d := range defs {
		byID[strings.ToUpper(d.ID)] = d
	}
	toRun := defs
	if ids := fs.Args(); len(ids) > 0 {
		toRun = nil
		for _, id := range ids {
			d, ok := byID[strings.ToUpper(id)]
			if !ok {
				fmt.Fprintf(stderr, "addsbench: unknown experiment %q (try -list)\n", id)
				status = 1
				continue
			}
			toRun = append(toRun, d)
		}
	}

	// Run experiments with a bounded worker pool, buffering each report so
	// output order matches request order regardless of worker scheduling.
	workers := *par
	if workers <= 0 {
		workers = len(toRun)
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}
	start := time.Now()
	reports := make([]*adds.Report, len(toRun))
	if workers <= 1 {
		for i, d := range toRun {
			reports[i] = d.Run()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		panics := make([]any, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[w] = r
						for range next { // keep the feeder unblocked
						}
					}
				}()
				for i := range next {
					reports[i] = toRun[i].Run()
				}
			}(w)
		}
		for i := range toRun {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p) // surface on the caller, where run's recover formats it
			}
		}
	}
	lg.Debug("experiments complete", "count", len(reports), "workers", workers,
		"elapsed", time.Since(start))

	if *format == "json" {
		if s := writeIndentedJSON(stdout, stderr, fail, reports); s != 0 {
			return s
		}
		return status
	}
	for _, rep := range reports {
		fmt.Fprintln(stdout, rep.Format())
	}
	return status
}

func writeIndentedJSON(stdout, stderr io.Writer, fail func(error) int, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return fail(err)
	}
	return 0
}
