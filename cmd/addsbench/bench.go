package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/adds"
)

// The machine-readable perf trajectory. Every -bench run emits one
// BenchFile; CI compares the PR's file against the base ref's and the repo
// keeps a checked-in BENCH_baseline.json so speed claims are measurements,
// not assertions.

// BenchSchema versions the JSON layout.
const BenchSchema = "adds-bench/v1"

// BenchFile is the top-level -bench -format json document.
type BenchFile struct {
	Schema        string            `json:"schema"`
	Label         string            `json:"label"`
	EngineVersion string            `json:"engineVersion"`
	GoVersion     string            `json:"goVersion"`
	MemoEnabled   bool              `json:"memoEnabled"`
	Experiments   []BenchExperiment `json:"experiments"`
}

// BenchExperiment records one experiment's measurements. NsPerOp is the
// best-of-reps wall time (robust to CI noise); the per-op engine counters
// and the report digest are deterministic for a given engine version, so
// the comparator treats changes in them as drift rather than noise.
type BenchExperiment struct {
	ID            string  `json:"id"`
	Title         string  `json:"title"`
	Ops           int     `json:"ops"`
	NsPerOp       float64 `json:"nsPerOp"`
	AllocsPerOp   float64 `json:"allocsPerOp"`
	BytesPerOp    float64 `json:"bytesPerOp"`
	FixpointIters float64 `json:"fixpointIters"`
	MatrixClones  float64 `json:"matrixClones"`
	MemoHitRate   float64 `json:"memoHitRate"`
	ReportDigest  string  `json:"reportDigest"`
}

// benchOptions bundles the -bench knobs.
type benchOptions struct {
	benchtime time.Duration
	reps      int
	label     string
}

// benchOne measures a single experiment: one untimed warmup run pins the
// report digest (and warms the transfer memo so steady-state behaviour is
// measured), then reps timed loops of at least benchtime each; the fastest
// rep wins.
func benchOne(d adds.ExperimentDef, opt benchOptions) BenchExperiment {
	warm := d.Run()
	digest := sha256.Sum256([]byte(warm.Format()))

	best := BenchExperiment{
		ID:           d.ID,
		Title:        d.Title,
		ReportDigest: fmt.Sprintf("sha256:%x", digest),
	}
	for rep := 0; rep < opt.reps; rep++ {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		es0 := adds.ReadEngineStats()
		ops := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			d.Run()
			ops++
			if elapsed = time.Since(start); elapsed >= opt.benchtime {
				break
			}
		}
		runtime.ReadMemStats(&ms1)
		es1 := adds.ReadEngineStats()

		nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
		if best.Ops == 0 || nsPerOp < best.NsPerOp {
			fops := float64(ops)
			best.Ops = ops
			best.NsPerOp = nsPerOp
			best.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / fops
			best.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / fops
			best.FixpointIters = float64(es1.Iterations-es0.Iterations) / fops
			best.MatrixClones = float64(es1.Clones-es0.Clones) / fops
			hits := es1.MemoHits - es0.MemoHits
			misses := es1.MemoMisses - es0.MemoMisses
			if hits+misses > 0 {
				best.MemoHitRate = float64(hits) / float64(hits+misses)
			}
		}
	}
	return best
}

// summaryBenchSrc is a fixed multi-function program exercising the
// interprocedural summary machinery end to end: a data-only walker, a
// two-argument shape mutator, a recursive callee, and a driver whose call
// sites apply all three.
const summaryBenchSrc = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
void bump(TwoWayLL *l) {
    while (l != NULL) {
        l->data = l->data + 1;
        l = l->next;
    }
}
void splice(TwoWayLL *a, TwoWayLL *b) {
    if (a != NULL && b != NULL) {
        a->next = b;
        b->prev = a;
    }
}
void wander(TwoWayLL *l, int d) {
    if (l != NULL && d > 0) {
        l->data = d;
        wander(l->next, d - 1);
    }
}
void driver(TwoWayLL *h) {
    TwoWayLL *t;
    t = new TwoWayLL;
    splice(h, t);
    bump(h);
    wander(h, 3);
}
`

// summaryBenchDefs returns two bench-only pseudo-experiments measuring
// whole-program analysis against a cold vs warm summary cache. They are not
// part of the paper's E1-E10 registry; -bench appends them so the perf
// trajectory records what the content-addressed cache buys. SUMC resets the
// process-wide cache before every run (every summary is a miss); SUMW leaves
// it populated (after the untimed warmup every summary is a hit).
func summaryBenchDefs() []adds.ExperimentDef {
	unit := adds.MustLoad(summaryBenchSrc)
	analyzeAll := func() (computed, reused int) {
		analyses, err := unit.AnalyzeAllOpt(context.Background())
		if err != nil {
			panic(fmt.Sprintf("summary bench fixture failed to analyze: %v", err))
		}
		for _, an := range analyses {
			if tab := an.SummaryTable(); tab != nil {
				return tab.Computed, tab.Reused
			}
		}
		return 0, 0
	}
	report := func(id, title string, computed, reused int) *adds.Report {
		return &adds.Report{
			ID: id, Title: title,
			Headers: []string{"summaries computed", "summaries reused"},
			Rows:    [][]string{{fmt.Sprint(computed), fmt.Sprint(reused)}},
		}
	}
	const (
		coldTitle = "compositional summaries — whole-program analysis, cold cache"
		warmTitle = "compositional summaries — whole-program analysis, warm cache"
	)
	return []adds.ExperimentDef{
		{ID: "SUMC", Title: coldTitle, Run: func() *adds.Report {
			adds.ResetEngineSummaryCache()
			computed, reused := analyzeAll()
			return report("SUMC", coldTitle, computed, reused)
		}},
		{ID: "SUMW", Title: warmTitle, Run: func() *adds.Report {
			computed, reused := analyzeAll()
			if computed > 0 {
				// A cold first call primes the cache; re-run so the report
				// (pinned by benchOne's untimed warmup) and every timed op
				// measure the steady warm state.
				computed, reused = analyzeAll()
			}
			return report("SUMW", warmTitle, computed, reused)
		}},
	}
}

// runBench measures every requested experiment serially (timing and
// parallelism do not mix) and returns the trajectory document.
func runBench(toRun []adds.ExperimentDef, opt benchOptions, stderr io.Writer) *BenchFile {
	bf := &BenchFile{
		Schema:        BenchSchema,
		Label:         opt.label,
		EngineVersion: adds.EngineVersion(),
		GoVersion:     runtime.Version(),
		MemoEnabled:   adds.EngineMemoEnabled(),
	}
	for _, d := range toRun {
		fmt.Fprintf(stderr, "bench %s (%d reps × %s)\n", d.ID, opt.reps, opt.benchtime)
		bf.Experiments = append(bf.Experiments, benchOne(d, opt))
	}
	return bf
}

// formatBenchText renders the trajectory for humans (-format text).
func formatBenchText(w io.Writer, bf *BenchFile) {
	fmt.Fprintf(w, "label=%s engine=%s %s memo=%t\n",
		bf.Label, bf.EngineVersion, bf.GoVersion, bf.MemoEnabled)
	for _, e := range bf.Experiments {
		fmt.Fprintf(w, "%-4s %12.0f ns/op %10.0f allocs/op %12.0f B/op  iters=%g clones=%g hit=%.2f\n",
			e.ID, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp,
			e.FixpointIters, e.MatrixClones, e.MemoHitRate)
	}
}
