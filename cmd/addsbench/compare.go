package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The bench-gate comparator: `addsbench -compare old.json new.json
// -threshold 15` fails (exit 1) on a wall-time regression beyond the
// threshold, and on ANY drift in the deterministic metrics — fixpoint
// iteration counts or report digests — when both files were produced by the
// same engine version. A version bump waives drift checks: changed output
// is then a declared semantic change, and version.go discipline (bump on
// any output change) is exactly what the waiver enforces.

// compareResult is one comparator verdict line.
type compareResult struct {
	id   string
	ok   bool
	note string
}

func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, bf.Schema, BenchSchema)
	}
	return &bf, nil
}

// compareBench evaluates new against old. Experiments missing from the old
// file pass with a notice (a fresh or empty baseline gates nothing);
// experiments missing from the new file fail (coverage must not shrink
// silently).
func compareBench(old, cur *BenchFile, thresholdPct float64) (results []compareResult, failed bool) {
	oldByID := map[string]BenchExperiment{}
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	sameEngine := old.EngineVersion == cur.EngineVersion
	newSeen := map[string]bool{}

	for _, ne := range cur.Experiments {
		newSeen[ne.ID] = true
		oe, ok := oldByID[ne.ID]
		if !ok {
			results = append(results, compareResult{ne.ID, true, "no baseline (new experiment or empty baseline)"})
			continue
		}
		limit := oe.NsPerOp * (1 + thresholdPct/100)
		switch {
		case oe.NsPerOp > 0 && ne.NsPerOp > limit:
			results = append(results, compareResult{ne.ID, false, fmt.Sprintf(
				"ns/op regression: %.0f -> %.0f (+%.1f%%, threshold %.0f%%)",
				oe.NsPerOp, ne.NsPerOp, 100*(ne.NsPerOp/oe.NsPerOp-1), thresholdPct)})
			failed = true
		case sameEngine && oe.FixpointIters != ne.FixpointIters:
			results = append(results, compareResult{ne.ID, false, fmt.Sprintf(
				"fixpoint-iteration drift on same engine %s: %g -> %g",
				old.EngineVersion, oe.FixpointIters, ne.FixpointIters)})
			failed = true
		case sameEngine && oe.ReportDigest != ne.ReportDigest:
			results = append(results, compareResult{ne.ID, false, fmt.Sprintf(
				"report digest drift on same engine %s (analysis output changed without a version bump)",
				old.EngineVersion)})
			failed = true
		default:
			note := fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%)",
				oe.NsPerOp, ne.NsPerOp, 100*(ne.NsPerOp/safeDiv(oe.NsPerOp)-1))
			if !sameEngine {
				note += fmt.Sprintf("; drift checks waived (%s -> %s)", old.EngineVersion, cur.EngineVersion)
			}
			results = append(results, compareResult{ne.ID, true, note})
		}
	}
	for _, oe := range old.Experiments {
		if !newSeen[oe.ID] {
			results = append(results, compareResult{oe.ID, false, "experiment missing from new run"})
			failed = true
		}
	}
	return results, failed
}

func safeDiv(d float64) float64 {
	if d == 0 {
		return 1
	}
	return d
}

// runCompare is the -compare entry point.
func runCompare(oldPath, newPath string, thresholdPct float64, stdout, stderr io.Writer) int {
	old, err := loadBenchFile(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "addsbench:", err)
		return 1
	}
	nw, err := loadBenchFile(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "addsbench:", err)
		return 1
	}
	results, failed := compareBench(old, nw, thresholdPct)
	for _, r := range results {
		status := "ok  "
		if !r.ok {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%s %-4s %s\n", status, r.id, r.note)
	}
	if failed {
		fmt.Fprintf(stdout, "bench-gate: FAIL (threshold %.0f%%)\n", thresholdPct)
		return 1
	}
	fmt.Fprintf(stdout, "bench-gate: ok (%d experiments, threshold %.0f%%)\n", len(results), thresholdPct)
	return 0
}
