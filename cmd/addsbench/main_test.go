package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func TestList(t *testing.T) {
	status, out, _ := runCmd(t, "-list")
	if status != 0 {
		t.Fatalf("status = %d", status)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("listed %d experiments, want 10:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "E1 ") {
		t.Errorf("first line %q", lines[0])
	}
}

func TestUnknownExperiment(t *testing.T) {
	status, _, stderr := runCmd(t, "E99")
	if status != 1 {
		t.Errorf("status = %d, want 1", status)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr = %q", stderr)
	}
	if strings.Contains(stderr, "goroutine") {
		t.Errorf("stderr looks like a stack trace:\n%s", stderr)
	}
}

func TestSelectedExperiments(t *testing.T) {
	status, out, stderr := runCmd(t, "E1", "E4")
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	i1, i4 := strings.Index(out, "== E1:"), strings.Index(out, "== E4:")
	if i1 < 0 || i4 < 0 || i4 < i1 {
		t.Errorf("reports missing or out of order (E1 at %d, E4 at %d)", i1, i4)
	}
}

// TestParallelMatchesSerial: -par must not change the output or its order.
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"E1", "E3", "E4", "E5"}
	_, serial, _ := runCmd(t, append([]string{"-par", "1"}, ids...)...)
	status, parallel, stderr := runCmd(t, append([]string{"-par", "4"}, ids...)...)
	if status != 0 {
		t.Fatalf("parallel status %d, stderr %q", status, stderr)
	}
	if serial != parallel {
		t.Errorf("-par 4 output differs from -par 1")
	}
}

func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		par       int
		profiling bool
		n         int
		want      int
		wantNote  bool
	}{
		{par: 0, profiling: false, n: 4, want: 4},
		{par: 8, profiling: false, n: 4, want: 4},
		{par: 2, profiling: false, n: 4, want: 2},
		{par: 4, profiling: true, n: 4, want: 1, wantNote: true},
		{par: 0, profiling: true, n: 4, want: 1, wantNote: true},
		{par: 1, profiling: true, n: 4, want: 1}, // already serial: no note
	}
	for _, c := range cases {
		got, note := effectiveWorkers(c.par, c.profiling, c.n)
		if got != c.want || (note != "") != c.wantNote {
			t.Errorf("effectiveWorkers(%d, %t, %d) = %d, %q; want %d, note=%t",
				c.par, c.profiling, c.n, got, note, c.want, c.wantNote)
		}
	}
}

// TestCPUProfileSerializes: -cpuprofile with -par > 1 must run serially and
// say so, instead of producing an interleaved multi-worker profile.
func TestCPUProfileSerializes(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.prof")
	status, out, stderr := runCmd(t, "-cpuprofile", prof, "-par", "4", "E1", "E3")
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	if !strings.Contains(stderr, "forces serial execution") {
		t.Errorf("stderr missing serialization note: %q", stderr)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Errorf("profile not written: %v", err)
	}
	_, serial, _ := runCmd(t, "E1", "E3")
	if out != serial {
		t.Errorf("profiled output differs from plain serial output")
	}
}

func TestBenchJSON(t *testing.T) {
	status, out, stderr := runCmd(t,
		"-bench", "-format", "json", "-benchtime", "1ms", "-reps", "1", "-label", "test", "E1")
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	var bf BenchFile
	if err := json.Unmarshal([]byte(out), &bf); err != nil {
		t.Fatalf("bench output is not valid JSON: %v\n%s", err, out)
	}
	if bf.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", bf.Schema, BenchSchema)
	}
	if bf.Label != "test" || bf.EngineVersion == "" || bf.GoVersion == "" {
		t.Errorf("header incomplete: %+v", bf)
	}
	if len(bf.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(bf.Experiments))
	}
	e := bf.Experiments[0]
	if e.ID != "E1" || e.Ops < 1 || e.NsPerOp <= 0 {
		t.Errorf("experiment measurements incomplete: %+v", e)
	}
	if !strings.HasPrefix(e.ReportDigest, "sha256:") {
		t.Errorf("digest = %q", e.ReportDigest)
	}
}

// writeBenchFile marshals a BenchFile into dir and returns its path.
func writeBenchFile(t *testing.T, dir, name string, bf BenchFile) string {
	t.Helper()
	bf.Schema = BenchSchema
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	exp := func(ns float64, iters float64, digest string) BenchExperiment {
		return BenchExperiment{ID: "E4", Ops: 10, NsPerOp: ns,
			FixpointIters: iters, ReportDigest: digest}
	}
	base := BenchFile{Label: "base", EngineVersion: "gpm-3",
		Experiments: []BenchExperiment{exp(1000, 40, "sha256:aa")}}

	cases := []struct {
		name       string
		cur        BenchFile
		wantStatus int
		wantOut    string
	}{
		{"within threshold", BenchFile{EngineVersion: "gpm-3",
			Experiments: []BenchExperiment{exp(1100, 40, "sha256:aa")}}, 0, "bench-gate: ok"},
		{"ns regression", BenchFile{EngineVersion: "gpm-3",
			Experiments: []BenchExperiment{exp(1300, 40, "sha256:aa")}}, 1, "ns/op regression"},
		{"iteration drift", BenchFile{EngineVersion: "gpm-3",
			Experiments: []BenchExperiment{exp(1000, 41, "sha256:aa")}}, 1, "fixpoint-iteration drift"},
		{"digest drift", BenchFile{EngineVersion: "gpm-3",
			Experiments: []BenchExperiment{exp(1000, 40, "sha256:bb")}}, 1, "report digest drift"},
		{"version bump waives drift", BenchFile{EngineVersion: "gpm-4",
			Experiments: []BenchExperiment{exp(1000, 41, "sha256:bb")}}, 0, "drift checks waived"},
		{"missing experiment", BenchFile{EngineVersion: "gpm-3"}, 1, "missing from new run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			old := writeBenchFile(t, dir, "old.json", base)
			cur := writeBenchFile(t, dir, "new.json", c.cur)
			status, out, stderr := runCmd(t, "-compare", "-threshold", "15", old, cur)
			if status != c.wantStatus {
				t.Errorf("status = %d, want %d\nstdout: %s\nstderr: %s", status, c.wantStatus, out, stderr)
			}
			if !strings.Contains(out, c.wantOut) {
				t.Errorf("stdout missing %q:\n%s", c.wantOut, out)
			}
		})
	}
}

// TestCompareEmptyBaseline: a baseline with no experiments (the CI fallback
// when the base ref predates -bench) gates nothing and passes.
func TestCompareEmptyBaseline(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", BenchFile{Label: "base", EngineVersion: "gpm-3"})
	cur := writeBenchFile(t, dir, "new.json", BenchFile{EngineVersion: "gpm-3",
		Experiments: []BenchExperiment{{ID: "E4", NsPerOp: 1000}}})
	status, out, _ := runCmd(t, "-compare", old, cur)
	if status != 0 {
		t.Errorf("status = %d, want 0\n%s", status, out)
	}
	if !strings.Contains(out, "no baseline") {
		t.Errorf("stdout missing empty-baseline notice:\n%s", out)
	}
}

func TestCompareUsage(t *testing.T) {
	status, _, stderr := runCmd(t, "-compare", "only-one.json")
	if status != 2 {
		t.Errorf("status = %d, want 2", status)
	}
	if !strings.Contains(stderr, "exactly two") {
		t.Errorf("stderr = %q", stderr)
	}
}
