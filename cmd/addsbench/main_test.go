package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func TestList(t *testing.T) {
	status, out, _ := runCmd(t, "-list")
	if status != 0 {
		t.Fatalf("status = %d", status)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("listed %d experiments, want 10:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "E1 ") {
		t.Errorf("first line %q", lines[0])
	}
}

func TestUnknownExperiment(t *testing.T) {
	status, _, stderr := runCmd(t, "E99")
	if status != 1 {
		t.Errorf("status = %d, want 1", status)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr = %q", stderr)
	}
	if strings.Contains(stderr, "goroutine") {
		t.Errorf("stderr looks like a stack trace:\n%s", stderr)
	}
}

func TestSelectedExperiments(t *testing.T) {
	status, out, stderr := runCmd(t, "E1", "E4")
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	i1, i4 := strings.Index(out, "== E1:"), strings.Index(out, "== E4:")
	if i1 < 0 || i4 < 0 || i4 < i1 {
		t.Errorf("reports missing or out of order (E1 at %d, E4 at %d)", i1, i4)
	}
}

// TestParallelMatchesSerial: -par must not change the output or its order.
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"E1", "E3", "E4", "E5"}
	_, serial, _ := runCmd(t, append([]string{"-par", "1"}, ids...)...)
	status, parallel, stderr := runCmd(t, append([]string{"-par", "4"}, ids...)...)
	if status != 0 {
		t.Fatalf("parallel status %d, stderr %q", status, stderr)
	}
	if serial != parallel {
		t.Errorf("-par 4 output differs from -par 1")
	}
}
