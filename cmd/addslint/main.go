// Command addslint is the run-time validation tool the paper proposes as a
// debugging aid (Section 3: "the compiler's ability to generate run-time
// checks to ensure proper use of dynamic data structures"). It interprets a
// mini program's entry function and then checks every ADDS property of
// Section 4 (Defs 4.2-4.9) against the structures the program built.
//
// Usage:
//
//	addslint prog.mini            # runs main(), checks the final heap
//	addslint -entry build prog.mini
//
// The entry function must take no parameters (or a single int, settable
// with -n). Exit status 1 means the heap violates a declaration (or an
// internal failure); the other codes are shared across the adds tools:
// 2 usage, 3 source error in the input, 4 unknown entry function.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/adds"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics are reported as a single line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addslint: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("addslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	entry := fs.String("entry", "main", "entry function to interpret")
	n := fs.Int64("n", 10, "value for a single int parameter, if the entry takes one")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: addslint [flags] file.mini")
		return 2
	}
	// fail reports one error the one-line way and picks the shared exit code
	// for its class (source errors 3, unknown entry 4, otherwise 1).
	fail := func(err error) int {
		fmt.Fprintln(stderr, "addslint:", err)
		return adds.ExitCode(err)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		return fail(err)
	}
	fd := unit.Prog.FuncByName(*entry)
	if fd == nil {
		return fail(fmt.Errorf("%w: entry %q not found", adds.ErrUnknownFunction, *entry))
	}

	in := unit.Interp()
	var callArgs []adds.Value
	switch {
	case len(fd.Params) == 0:
	case len(fd.Params) == 1 && !fd.Params[0].Pointer:
		callArgs = append(callArgs, adds.IntVal(*n))
	default:
		return fail(fmt.Errorf("entry %q must take no parameters or one int", *entry))
	}
	if _, err := in.Call(*entry, callArgs...); err != nil {
		return fail(fmt.Errorf("execution failed: %w", err))
	}

	roots := in.Heap.Live()
	violations := unit.CheckHeap(roots...)
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "ok: %d nodes allocated, all declarations hold\n", in.Heap.Size())
		return 0
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, v.String())
	}
	return 1
}
