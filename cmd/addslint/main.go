// Command addslint is the run-time validation tool the paper proposes as a
// debugging aid (Section 3: "the compiler's ability to generate run-time
// checks to ensure proper use of dynamic data structures"). It interprets a
// mini program's entry function and then checks every ADDS property of
// Section 4 (Defs 4.2-4.9) against the structures the program built.
//
// Usage:
//
//	addslint prog.mini            # runs main(), checks the final heap
//	addslint -entry build prog.mini
//
// The entry function must take no parameters (or a single int, settable
// with -n). Exit status 1 means the heap violates a declaration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/adds"
)

func main() {
	entry := flag.String("entry", "main", "entry function to interpret")
	n := flag.Int64("n", 10, "value for a single int parameter, if the entry takes one")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: addslint [flags] file.mini")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		fatal(err)
	}
	fd := unit.Prog.FuncByName(*entry)
	if fd == nil {
		fatal(fmt.Errorf("entry function %q not found", *entry))
	}

	in := unit.Interp()
	var args []adds.Value
	switch {
	case len(fd.Params) == 0:
	case len(fd.Params) == 1 && !fd.Params[0].Pointer:
		args = append(args, adds.IntVal(*n))
	default:
		fatal(fmt.Errorf("entry %q must take no parameters or one int", *entry))
	}
	if _, err := in.Call(*entry, args...); err != nil {
		fatal(fmt.Errorf("execution failed: %w", err))
	}

	roots := in.Heap.Live()
	violations := unit.CheckHeap(roots...)
	if len(violations) == 0 {
		fmt.Printf("ok: %d nodes allocated, all declarations hold\n", in.Heap.Size())
		return
	}
	for _, v := range violations {
		fmt.Println(v.String())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "addslint:", err)
	os.Exit(1)
}
