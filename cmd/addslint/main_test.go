package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func assertOneLineError(t *testing.T, status int, stderr string) {
	t.Helper()
	if status == 0 {
		t.Fatalf("status = 0, want non-zero (stderr %q)", stderr)
	}
	if strings.Contains(stderr, "goroutine") || strings.Contains(stderr, "panic:") {
		t.Fatalf("stderr looks like a stack trace:\n%s", stderr)
	}
	if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 {
		t.Fatalf("stderr has %d extra lines:\n%s", n, stderr)
	}
}

func TestUnparseableInput(t *testing.T) {
	p := filepath.Join(t.TempDir(), "garbage.mini")
	if err := os.WriteFile(p, []byte("%%% { unparseable"), 0o644); err != nil {
		t.Fatal(err)
	}
	status, _, stderr := runCmd(t, p)
	assertOneLineError(t, status, stderr)
	if !strings.HasPrefix(stderr, "addslint:") {
		t.Errorf("stderr not prefixed with the command name: %q", stderr)
	}
}

func TestMissingEntry(t *testing.T) {
	// matrixops.mini deliberately has no main.
	f := filepath.Join("..", "..", "testdata", "matrixops.mini")
	status, _, stderr := runCmd(t, f)
	assertOneLineError(t, status, stderr)
	if !strings.Contains(stderr, "not found") {
		t.Errorf("stderr = %q, want an entry-not-found message", stderr)
	}
}

func TestCleanPrograms(t *testing.T) {
	for _, name := range []string{"listops.mini", "treeops.mini"} {
		f := filepath.Join("..", "..", "testdata", name)
		status, out, stderr := runCmd(t, f)
		if status != 0 {
			t.Errorf("%s: status %d, stderr %q", name, status, stderr)
		}
		if !strings.HasPrefix(out, "ok:") {
			t.Errorf("%s: output %q, want ok line", name, out)
		}
	}
}

func TestUsage(t *testing.T) {
	if status, _, _ := runCmd(t); status != 2 {
		t.Errorf("no-args status = %d, want 2", status)
	}
}
