// Command addsload drives a mixed workload against one addsd process or an
// N-process cluster and reports the latency distribution, failing when a
// p50/p99 SLO is violated. The workload is derived deterministically from
// -seed, so a CI run is reproducible request for request:
//
//	addsload -targets 127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 \
//	    -requests 300 -mix hit=6,miss=3,divergent=1 -slo-p99 500ms
//
// Three request kinds model real traffic:
//
//   - hit: drawn from a small fixed pool of generated programs, so repeats
//     land in some shard's cache (or a peer's, in cluster mode);
//   - miss: a program no one has seen before (unique generator seed), which
//     must be analyzed from scratch;
//   - divergent: a malformed source that the server rejects with 422 — the
//     error path must stay fast too.
//
// Responses tally by outcome and by X-Cache disposition (hit, peer-hit,
// forwarded, ...), which is how the cluster smoke test proves peer cache
// traffic actually happened. 429 sheds are counted but are not failures;
// transport errors and 5xx are. Exit codes: 0 ok, 1 request failures,
// 2 flag misuse, 3 SLO violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// job is one planned request: the body is fixed before any request is sent
// so the workload depends only on -seed, never on timing.
type job struct {
	kind   string // hit | miss | divergent
	target string
	body   []byte
}

// sample is one completed request.
type sample struct {
	kind    string
	status  int
	cache   string // X-Cache response header, "" when absent
	latency time.Duration
	err     error
}

// report is the machine-readable summary (-format json) and the source of
// the text rendering.
type report struct {
	Targets     int            `json:"targets"`
	Requests    int            `json:"requests"`
	Elapsed     float64        `json:"elapsedSeconds"`
	Throughput  float64        `json:"requestsPerSecond"`
	OK          int            `json:"ok"`
	Divergent   int            `json:"divergent"`
	Shed        int            `json:"shed"`
	Failed      int            `json:"failed"`
	Cache       map[string]int `json:"cache"`
	P50ms       float64        `json:"p50ms"`
	P90ms       float64        `json:"p90ms"`
	P99ms       float64        `json:"p99ms"`
	MaxMs       float64        `json:"maxMs"`
	SLOViolated bool           `json:"sloViolated"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("addsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targets := fs.String("targets", "127.0.0.1:7117", "comma-separated addsd base addresses; requests round-robin across them")
	seed := fs.Int64("seed", 1, "workload seed: same seed, same request bodies in the same order")
	requests := fs.Int("requests", 200, "total requests to send")
	concurrency := fs.Int("concurrency", 8, "in-flight request cap")
	mix := fs.String("mix", "hit=6,miss=3,divergent=1", "workload weights as kind=weight, kinds: hit, miss, divergent")
	pool := fs.Int("hit-pool", 16, "distinct programs in the hit pool")
	profile := fs.String("profile", "mixed", "generator profile for program bodies")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request budget")
	sloP50 := fs.Duration("slo-p50", 0, "fail (exit 3) when p50 exceeds this (0 = no assertion)")
	sloP99 := fs.Duration("slo-p99", 0, "fail (exit 3) when p99 exceeds this (0 = no assertion)")
	format := fs.String("format", "text", "report format: text or json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || *requests < 1 || *concurrency < 1 || *pool < 1 {
		fmt.Fprintln(stderr, "usage: addsload [flags]")
		fs.Usage()
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "addsload: unknown -format %q\n", *format)
		return 2
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(stderr, "addsload:", err)
		return 2
	}
	pr, err := gen.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(stderr, "addsload:", err)
		return 2
	}
	var bases []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			if !strings.Contains(t, "://") {
				t = "http://" + t
			}
			bases = append(bases, strings.TrimRight(t, "/"))
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(stderr, "addsload: -targets is empty")
		return 2
	}

	jobs := plan(*seed, *requests, *pool, weights, pr, bases)
	client := &http.Client{Timeout: *timeout}
	samples := make([]sample, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, *concurrency)
	start := time.Now()
	for i, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			samples[i] = send(client, j)
		}(i, j)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(samples, len(bases), elapsed)
	rep.SLOViolated = (*sloP50 > 0 && rep.P50ms > float64(*sloP50)/1e6) ||
		(*sloP99 > 0 && rep.P99ms > float64(*sloP99)/1e6)

	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.Encode(rep) //nolint:errcheck
	} else {
		render(stdout, rep, *sloP50, *sloP99)
	}
	switch {
	case rep.Failed > 0:
		return 1
	case rep.SLOViolated:
		return 3
	}
	return 0
}

// parseMix turns "hit=6,miss=3,divergent=1" into weights.
func parseMix(s string) (map[string]int, error) {
	w := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		var n int
		if _, err := fmt.Sscanf(val, "%d", &n); !ok || err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		switch kind {
		case "hit", "miss", "divergent":
			w[kind] = n
		default:
			return nil, fmt.Errorf("unknown -mix kind %q", kind)
		}
	}
	total := w["hit"] + w["miss"] + w["divergent"]
	if total == 0 {
		return nil, fmt.Errorf("-mix %q has zero total weight", s)
	}
	return w, nil
}

// plan lays out the whole workload up front from the seed: kind choices come
// from one rand stream, hit bodies from a fixed pool of generated programs,
// miss bodies from fresh per-request seeds, divergent bodies from a small
// rotation of malformed sources. Targets round-robin so every process sees
// every kind.
func plan(seed int64, n, poolSize int, weights map[string]int, pr gen.Profile, bases []string) []job {
	hitPool := make([][]byte, poolSize)
	for i := range hitPool {
		hitPool[i] = analyzeBody(gen.Generate(seed+int64(i), pr).Source())
	}
	rng := rand.New(rand.NewSource(seed))
	total := weights["hit"] + weights["miss"] + weights["divergent"]
	jobs := make([]job, n)
	missSeed := seed + int64(poolSize) // fresh seeds start past the hit pool
	for i := range jobs {
		j := job{target: bases[i%len(bases)]}
		switch pick := rng.Intn(total); {
		case pick < weights["hit"]:
			j.kind, j.body = "hit", hitPool[rng.Intn(poolSize)]
		case pick < weights["hit"]+weights["miss"]:
			missSeed++
			j.kind, j.body = "miss", analyzeBody(gen.Generate(missSeed, pr).Source())
		default:
			j.kind = "divergent"
			j.body = analyzeBody([]byte(fmt.Sprintf("void broken%d(TwoWayLL *p) {", rng.Intn(8))))
		}
		jobs[i] = j
	}
	return jobs
}

func analyzeBody(source []byte) []byte {
	b, _ := json.Marshal(map[string]string{"source": string(source)})
	return b
}

func send(client *http.Client, j job) sample {
	start := time.Now()
	resp, err := client.Post(j.target+"/v1/analyze", "application/json", strings.NewReader(string(j.body)))
	s := sample{kind: j.kind, latency: time.Since(start), err: err}
	if err != nil {
		return s
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	s.latency = time.Since(start)
	s.status = resp.StatusCode
	s.cache = resp.Header.Get("X-Cache")
	return s
}

func summarize(samples []sample, targets int, elapsed time.Duration) report {
	rep := report{
		Targets:    targets,
		Requests:   len(samples),
		Elapsed:    elapsed.Seconds(),
		Throughput: float64(len(samples)) / elapsed.Seconds(),
		Cache:      map[string]int{},
	}
	var lat []time.Duration
	for _, s := range samples {
		switch {
		case s.err != nil || s.status >= 500:
			rep.Failed++
			continue // a failed request's latency is noise (timeouts dominate)
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		case s.status == http.StatusUnprocessableEntity:
			rep.Divergent++
		case s.status == http.StatusOK:
			rep.OK++
		default:
			rep.Failed++
			continue
		}
		if s.cache != "" {
			rep.Cache[s.cache]++
		}
		lat = append(lat, s.latency)
	}
	sort.Slice(lat, func(i, k int) bool { return lat[i] < lat[k] })
	rep.P50ms = percentile(lat, 0.50)
	rep.P90ms = percentile(lat, 0.90)
	rep.P99ms = percentile(lat, 0.99)
	if len(lat) > 0 {
		rep.MaxMs = float64(lat[len(lat)-1]) / 1e6
	}
	return rep
}

// percentile is the nearest-rank percentile over sorted samples, in ms.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}

func render(w io.Writer, rep report, sloP50, sloP99 time.Duration) {
	fmt.Fprintf(w, "addsload: %d requests in %.2fs (%.1f req/s) against %d target(s)\n",
		rep.Requests, rep.Elapsed, rep.Throughput, rep.Targets)
	fmt.Fprintf(w, "  outcomes: %d ok, %d divergent(422), %d shed(429), %d failed\n",
		rep.OK, rep.Divergent, rep.Shed, rep.Failed)
	if len(rep.Cache) > 0 {
		keys := make([]string, 0, len(rep.Cache))
		for k := range rep.Cache {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, rep.Cache[k])
		}
		fmt.Fprintf(w, "  cache: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(w, "  latency: p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
		rep.P50ms, rep.P90ms, rep.P99ms, rep.MaxMs)
	assert := func(name string, got float64, slo time.Duration) {
		if slo <= 0 {
			return
		}
		verdict := "ok"
		if got > float64(slo)/1e6 {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "  slo: %s %.2fms vs %s %s\n", name, got, slo, verdict)
	}
	assert("p50", rep.P50ms, sloP50)
	assert("p99", rep.P99ms, sloP99)
}
