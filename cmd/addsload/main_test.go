package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/service"
)

func startService(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func runLoad(t *testing.T, args ...string) (int, report, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	var rep report
	if stdout.Len() > 0 && json.Valid(stdout.Bytes()) {
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Fatalf("bad json report: %v\n%s", err, stdout.String())
		}
	}
	return code, rep, stdout.String() + stderr.String()
}

func TestLoadMixedWorkload(t *testing.T) {
	ts := startService(t)
	code, rep, out := runLoad(t,
		"-targets", ts.URL, "-requests", "60", "-seed", "7",
		"-mix", "hit=6,miss=3,divergent=1", "-hit-pool", "4",
		"-concurrency", "4", "-format", "json")
	if code != 0 {
		t.Fatalf("exit = %d; output:\n%s", code, out)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0:\n%s", rep.Failed, out)
	}
	if rep.OK+rep.Divergent+rep.Shed != 60 {
		t.Errorf("ok %d + divergent %d + shed %d != 60", rep.OK, rep.Divergent, rep.Shed)
	}
	if rep.Divergent == 0 {
		t.Errorf("mix included divergent traffic but none was observed:\n%s", out)
	}
	// A 4-program hit pool over 60 requests must produce real cache hits.
	if rep.Cache["hit"] == 0 {
		t.Errorf("no cache hits recorded: %v", rep.Cache)
	}
	if rep.P50ms <= 0 || rep.P99ms < rep.P50ms || rep.MaxMs < rep.P99ms {
		t.Errorf("implausible percentiles: p50 %.3f p99 %.3f max %.3f", rep.P50ms, rep.P99ms, rep.MaxMs)
	}
}

func TestLoadTextReport(t *testing.T) {
	ts := startService(t)
	code, _, out := runLoad(t,
		"-targets", ts.URL, "-requests", "10", "-seed", "3", "-slo-p99", "30s")
	if code != 0 {
		t.Fatalf("exit = %d; output:\n%s", code, out)
	}
	for _, want := range []string{"10 requests", "outcomes:", "latency: p50", "slo: p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadSLOViolation(t *testing.T) {
	ts := startService(t)
	code, rep, out := runLoad(t,
		"-targets", ts.URL, "-requests", "8", "-seed", "3",
		"-slo-p99", "1ns", "-format", "json")
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (SLO violation); output:\n%s", code, out)
	}
	if !rep.SLOViolated {
		t.Error("report does not flag the violation")
	}
}

// A dead target produces failures, and failures win over SLO in the exit
// code (a broken cluster must not read as a latency problem).
func TestLoadDeadTarget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	code, rep, out := runLoad(t,
		"-targets", addr, "-requests", "4", "-timeout", "500ms",
		"-slo-p99", "1ns", "-format", "json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if rep.Failed != 4 {
		t.Errorf("failed = %d, want 4", rep.Failed)
	}
}

func TestLoadBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"positional"},
		{"-requests", "0"},
		{"-mix", "hit=abc"},
		{"-mix", "hit=0,miss=0,divergent=0"},
		{"-mix", "unknownkind=3"},
		{"-format", "xml"},
		{"-profile", "no-such-profile"},
		{"-targets", " , "},
	} {
		if code, _, _ := runLoad(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

// The planned workload is a pure function of the seed: bodies, kinds, and
// target assignment all replay exactly.
func TestPlanDeterministic(t *testing.T) {
	pr, err := gen.ProfileByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	w := map[string]int{"hit": 6, "miss": 3, "divergent": 1}
	bases := []string{"http://a", "http://b", "http://c"}
	a := plan(42, 50, 8, w, pr, bases)
	b := plan(42, 50, 8, w, pr, bases)
	if len(a) != 50 {
		t.Fatalf("plan produced %d jobs", len(a))
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].target != b[i].target || !bytes.Equal(a[i].body, b[i].body) {
			t.Fatalf("job %d differs between identical plans", i)
		}
	}
	c := plan(43, 50, 8, w, pr, bases)
	same := 0
	for i := range a {
		if bytes.Equal(a[i].body, c[i].body) {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced an identical workload")
	}
}

func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(100)}
	if got := percentile(sorted, 0.50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(sorted, 0.99); got != 100 {
		t.Errorf("p99 = %v, want 100", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
