// Command addsd serves the path-matrix analysis as a long-lived daemon:
// POST a mini source to /v1/analyze or /v1/pipeline and get the same JSON
// the addsc -format json CLI prints. Results are content-addressed — keyed
// by source, options, and engine version — so repeated and concurrent
// identical requests are answered from cache or coalesced into one run.
//
// Usage:
//
//	addsd -addr :7117
//	curl -s localhost:7117/healthz
//	jq -Rs '{source: .}' prog.mini | curl -s -d @- localhost:7117/v1/analyze
//	curl -s localhost:7117/v1/oracles     # the alias-oracle registry
//
// Concurrent identical requests coalesce onto one detached computation
// whose lifetime is independent of any single client: a disconnecting
// client never fails its coalesced peers. Under overload, a bounded
// admission queue sheds excess requests with 429 + Retry-After instead of
// stacking goroutines.
//
// Cluster mode: give every process the same -peers list and each request's
// content-addressed key picks exactly one owning shard on a consistent-hash
// ring. Non-owners peek the owner's cache (GET /v1/cache/{key}), forward
// misses to the owner, and fall back to local analysis if the owner is
// unreachable — so a 3-process cluster answers byte-identically to one
// process while each key is computed and cached on one shard:
//
//	addsd -addr :7201 -peers 127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203
//
// Observability: GET /metrics (Prometheus text format, including per-phase
// duration histograms), GET /healthz, GET /debug/trace/{id} (recent traces;
// send a W3C traceparent header to pick the trace id), one structured
// access-log line per request on stderr (-log-format json by default), and
// the standard /debug/pprof endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole daemon, factored out so tests can drive it in-process.
// When ready is non-nil it receives the bound address once the listener is
// up (tests pass -addr 127.0.0.1:0 and read the real port from it).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("addsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7117", "listen address")
	cacheEntries := fs.Int("cache", 512, "maximum cached results")
	var workers int
	fs.IntVar(&workers, "workers", 0, "concurrent analyses (0 = one per CPU)")
	fs.IntVar(&workers, "par", 0, "alias for -workers (the shared adds spelling)")
	queue := fs.Int("queue", 0, "analyses queued for a worker before shedding with 429 (0 = 4x workers, negative = no queue)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-analysis budget (bounds the shared flight, not one client's wait)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	traceRing := fs.Int("trace-ring", obs.DefaultRingSize, "finished traces kept for /debug/trace/{id}")
	peers := fs.String("peers", "", "comma-separated addresses of every cluster member (including this one); empty = single process")
	self := fs.String("self", "", "this process's address as it appears in -peers (default: -addr)")
	peerTimeout := fs.Duration("peer-timeout", cluster.DefaultPeerTimeout, "per-attempt budget for peer cache peeks and forwards")
	maxBody := fs.Int64("max-body", service.DefaultMaxBodyBytes, "largest accepted request body in bytes (oversized = 413)")
	maxBatch := fs.Int("max-batch", service.DefaultMaxBatchItems, "most items accepted in one /v1/batch request")
	lf := cli.RegisterLogFlags(fs, "json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: addsd [flags]")
		fs.Usage()
		return 2
	}
	logger, err := lf.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "addsd:", err)
		return cli.ExitCode(err)
	}

	// Cluster membership is static configuration: every member gets the same
	// -peers list and names itself with -self (defaulting to its listen
	// address), so all members derive the same ring with no coordination.
	// Misuse is a flag error, not a degraded server.
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *self == "" {
			*self = *addr
		}
		if !slices.Contains(peerList, *self) {
			fmt.Fprintf(stderr, "addsd: -self %q is not in -peers %q\n", *self, *peers)
			return 2
		}
	}

	svc := service.New(service.Config{
		CacheEntries:   *cacheEntries,
		Workers:        workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Logger:         logger,
		TraceRing:      *traceRing,
		Peers:          peerList,
		Self:           *self,
		PeerTimeout:    *peerTimeout,
		MaxBodyBytes:   *maxBody,
		MaxBatchItems:  *maxBatch,
	})

	// Install the signal handler before announcing readiness so a SIGTERM
	// arriving during startup drains instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "addsd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "addsd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "addsd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests, then report
	// the cache counters so a session's effectiveness is visible in logs.
	fmt.Fprintln(stdout, "addsd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "addsd: shutdown:", err)
		return 1
	}
	m := svc.Metrics()
	fmt.Fprintf(stdout, "addsd: bye (cache hits %d, misses %d, coalesced %d)\n",
		m.CacheHits(), m.CacheMisses(), m.CacheCoalesced())
	return 0
}
