package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// logBuffer is a concurrency-safe buffer for the daemon's output: the
// handler goroutines write access-log lines while run's goroutine writes
// lifecycle lines and the test reads.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startDaemon runs the daemon in-process on an ephemeral port and returns
// its base URL plus a function that delivers SIGINT and waits for the
// graceful drain to finish.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() (int, string)) {
	t.Helper()
	var out logBuffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, &out, &out, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not start; output:\n%s", out.String())
	}
	shutdown := func() (int, string) {
		syscall.Kill(os.Getpid(), syscall.SIGINT) //nolint:errcheck
		select {
		case code := <-done:
			return code, out.String()
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not drain; output:\n%s", out.String())
			return -1, ""
		}
	}
	return "http://" + addr, shutdown
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	// One analysis twice: the second answer must come from the cache.
	req, _ := json.Marshal(map[string]string{
		"source": "type L [N] { int v; L *next is uniquely forward along N; };\n" +
			"void f(L *p) { while (p != NULL) { p->v = 0; p = p->next; } }",
	})
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != want {
			t.Fatalf("request %d: status %d, X-Cache %q, want 200 %q",
				i, resp.StatusCode, resp.Header.Get("X-Cache"), want)
		}
	}

	code, output := shutdown()
	if code != 0 {
		t.Fatalf("exit code %d; output:\n%s", code, output)
	}
	if !strings.Contains(output, "listening on http://") {
		t.Errorf("missing listen line:\n%s", output)
	}
	if !strings.Contains(output, "cache hits 1, misses 1") {
		t.Errorf("shutdown summary missing cache counters:\n%s", output)
	}
}

// TestDaemonQueueFlag: -queue -1 disables the admission queue, visible as
// a zero queue capacity on the scrape alongside the shed counter.
func TestDaemonQueueFlag(t *testing.T) {
	base, shutdown := startDaemon(t, "-queue", "-1", "-workers", "2")
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"addsd_queue_capacity 0",
		"addsd_pool_capacity 2",
		"addsd_shed_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if code, out := shutdown(); code != 0 {
		t.Fatalf("exit code %d; output:\n%s", code, out)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &out, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"extra-arg"}, &out, &out, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestDaemonBadAddr(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &out, nil); code != 1 {
		t.Fatalf("exit = %d, want 1; output %s", code, out.String())
	}
}

// TestDaemonClusterFlags: -peers wires the ring into the service — visible
// on the metrics scrape and in /readyz — with -self defaulting to -addr.
func TestDaemonClusterFlags(t *testing.T) {
	// The ephemeral port is unknown before bind, so name this process with
	// an explicit -self that appears in -peers; the sibling address does not
	// need to be reachable for readiness, only configured.
	base, shutdown := startDaemon(t,
		"-peers", "127.0.0.1:7201,127.0.0.1:7202", "-self", "127.0.0.1:7201",
		"-max-body", "1024", "-max-batch", "4", "-peer-timeout", "100ms")

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "addsd_cluster_ring_peers 2") {
		t.Errorf("metrics missing ring gauge:\n%s", body)
	}

	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(rb), `"peers":2`) {
		t.Errorf("readyz = %d %s, want 200 with peers:2", resp.StatusCode, rb)
	}

	// -max-body is live: a body over 1024 bytes is a 413, not a 400.
	big, _ := json.Marshal(map[string]string{"source": strings.Repeat("x", 2048)})
	resp, err = http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", resp.StatusCode)
	}

	if code, out := shutdown(); code != 0 {
		t.Fatalf("exit code %d; output:\n%s", code, out)
	}
}

// -self must name a member of -peers; anything else is flag misuse.
func TestDaemonSelfNotInPeers(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-peers", "127.0.0.1:7201,127.0.0.1:7202", "-self", "127.0.0.1:9999"}, &out, &out, nil)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; output %s", code, out.String())
	}
	if !strings.Contains(out.String(), "is not in -peers") {
		t.Errorf("missing diagnostic:\n%s", out.String())
	}
}
