package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/adds"
)

// runCmd drives run() in-process and returns (status, stdout, stderr).
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.mini")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// assertOneLineError: failures must be a single diagnostic line, never a
// panic stack trace.
func assertOneLineError(t *testing.T, status int, stderr string) {
	t.Helper()
	if status == 0 {
		t.Fatalf("status = 0, want non-zero (stderr %q)", stderr)
	}
	if strings.Contains(stderr, "goroutine") || strings.Contains(stderr, "panic:") {
		t.Fatalf("stderr looks like a stack trace:\n%s", stderr)
	}
	if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 {
		t.Fatalf("stderr has %d extra lines:\n%s", n, stderr)
	}
}

func TestUnparseableInput(t *testing.T) {
	p := writeTemp(t, "this is } not { mini ;;; %%%")
	status, _, stderr := runCmd(t, "-show", "check", p)
	assertOneLineError(t, status, stderr)
	if !strings.HasPrefix(stderr, "addsc:") {
		t.Errorf("stderr not prefixed with the command name: %q", stderr)
	}
}

func TestMissingFile(t *testing.T) {
	status, _, stderr := runCmd(t, "-show", "check", filepath.Join(t.TempDir(), "nope.mini"))
	assertOneLineError(t, status, stderr)
}

func TestUnknownFunction(t *testing.T) {
	p := writeTemp(t, "void f() { return; }")
	status, _, stderr := runCmd(t, "-fn", "nope", p)
	assertOneLineError(t, status, stderr)
}

func TestUnknownOracle(t *testing.T) {
	p := writeTemp(t, "void f() { return; }")
	status, _, stderr := runCmd(t, "-oracle", "psychic", p)
	assertOneLineError(t, status, stderr)
}

func TestUnknownShowItem(t *testing.T) {
	p := writeTemp(t, "void f() { return; }")
	status, _, stderr := runCmd(t, "-show", "bogus", p)
	assertOneLineError(t, status, stderr)
	if !strings.Contains(stderr, `"bogus"`) {
		t.Errorf("stderr does not name the bad item: %q", stderr)
	}
}

func TestUsage(t *testing.T) {
	if status, _, _ := runCmd(t); status != 2 {
		t.Errorf("no-args status = %d, want 2", status)
	}
}

func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mini"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, f := range files {
		status, out, stderr := runCmd(t, "-show", "matrix,iter,validate", f)
		if status != 0 {
			t.Errorf("%s: status %d, stderr %q", f, status, stderr)
		}
		if !strings.Contains(out, "=== function") {
			t.Errorf("%s: output missing function header", f)
		}
	}
}

// TestParallelMatchesSerial: -par must not change the output.
func TestParallelMatchesSerial(t *testing.T) {
	f := filepath.Join("..", "..", "testdata", "listops.mini")
	_, serial, _ := runCmd(t, "-par", "1", "-show", "matrix,iter", f)
	_, parallel, _ := runCmd(t, "-par", "8", "-show", "matrix,iter", f)
	if serial != parallel {
		t.Errorf("-par 8 output differs from -par 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestCPUProfileFlag(t *testing.T) {
	p := writeTemp(t, "void f() { return; }")
	prof := filepath.Join(t.TempDir(), "cpu.prof")
	status, _, stderr := runCmd(t, "-cpuprofile", prof, "-show", "check", p)
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	if st, err := os.Stat(prof); err != nil || st.Size() == 0 {
		t.Errorf("profile not written: %v", err)
	}
}

// TestExitCodes pins the shared exit-code convention: each failure class has
// its own status so scripts can branch without parsing stderr.
func TestExitCodes(t *testing.T) {
	good := writeTemp(t, "void f() { return; }")
	bad := writeTemp(t, "void f() { x = ; }")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"source error", []string{"-show", "check", bad}, adds.ExitSource},
		{"unknown function", []string{"-fn", "nope", good}, adds.ExitNoFunc},
		{"unknown oracle", []string{"-oracle", "psychic", good}, adds.ExitUsage},
		{"unknown show item", []string{"-show", "bogus", good}, adds.ExitUsage},
		{"bad format", []string{"-format", "yaml", good}, adds.ExitUsage},
		{"json source error", []string{"-format", "json", bad}, adds.ExitSource},
		{"json unknown function", []string{"-format", "json", "-fn", "nope", good}, adds.ExitNoFunc},
		{"json unknown oracle", []string{"-format", "json", "-oracle", "psychic", good}, adds.ExitUsage},
	}
	for _, tc := range cases {
		status, _, stderr := runCmd(t, tc.args...)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (stderr %q)", tc.name, status, tc.want, stderr)
		}
	}
}

// TestJSONFormat checks -format json emits the daemon's wire encoding.
func TestJSONFormat(t *testing.T) {
	f := filepath.Join("..", "..", "testdata", "listops.mini")
	status, out, stderr := runCmd(t, "-format", "json", f)
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	var resp struct {
		EngineVersion string `json:"engineVersion"`
		Functions     []struct {
			Name string `json:"name"`
		} `json:"functions"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if resp.EngineVersion == "" || len(resp.Functions) == 0 {
		t.Fatalf("wire fields missing: %+v", resp)
	}
}

// TestJSONPipeline: -show pipeline in JSON mode appends per-loop pipeline
// responses.
func TestJSONPipeline(t *testing.T) {
	f := filepath.Join("..", "..", "testdata", "listops.mini")
	status, out, stderr := runCmd(t, "-format", "json", "-show", "pipeline", f)
	if status != 0 {
		t.Fatalf("status %d, stderr %q", status, stderr)
	}
	var resp struct {
		Pipelines []struct {
			Fn   string `json:"fn"`
			Loop int    `json:"loop"`
		} `json:"pipelines"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(resp.Pipelines) == 0 {
		t.Fatal("no pipeline responses in JSON output")
	}
}

// traceLine is one parsed span-tree line: nesting depth, span name, and
// the printed duration.
type traceLine struct {
	depth int
	name  string
	ms    float64
	attrs string
}

func parseTraceTree(t *testing.T, stderr string) []traceLine {
	t.Helper()
	lines := strings.Split(strings.TrimRight(stderr, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "trace ") {
		t.Fatalf("stderr does not start with a trace header:\n%s", stderr)
	}
	var out []traceLine
	for _, line := range lines[1:] {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		fields := strings.Fields(trimmed)
		if len(fields) < 2 || !strings.HasSuffix(fields[1], "ms") {
			t.Fatalf("unparseable span line %q in:\n%s", line, stderr)
		}
		var ms float64
		if _, err := fmt.Sscanf(fields[1], "%fms", &ms); err != nil {
			t.Fatalf("bad duration in %q: %v", line, err)
		}
		out = append(out, traceLine{
			depth: indent / 2,
			name:  fields[0],
			ms:    ms,
			attrs: strings.Join(fields[2:], " "),
		})
	}
	return out
}

// TestTraceSpanTree: -trace renders the whole run as one span tree on
// stderr — root "addsc", the analysis phases as its children in pipeline
// order, the fixpoint span carrying engine stats — and the phase durations
// are explained by (sum to no more than) the root's.
func TestTraceSpanTree(t *testing.T) {
	f := filepath.Join("..", "..", "examples", "shift.mini")
	status, out, stderr := runCmd(t, "-trace", "-fn", "shift", "-show", "deps", f)
	if status != 0 {
		t.Fatalf("status %d, stderr:\n%s", status, stderr)
	}
	if !strings.Contains(out, "=== function shift ===") {
		t.Errorf("stdout lost the analysis output:\n%s", out)
	}

	spans := parseTraceTree(t, stderr)
	if len(spans) == 0 || spans[0].name != "addsc" || spans[0].depth != 0 {
		t.Fatalf("first span is not the addsc root: %+v", spans)
	}
	var phaseOrder []string
	var phaseSum float64
	for _, sp := range spans[1:] {
		if sp.depth == 1 {
			phaseOrder = append(phaseOrder, sp.name)
			phaseSum += sp.ms
		}
		if sp.name == "fixpoint" && !strings.Contains(sp.attrs, "iterations=") {
			t.Errorf("fixpoint span has no iterations attr: %q", sp.attrs)
		}
	}
	want := []string{"parse", "shape", "typecheck", "normalize", "summaries", "fixpoint", "ir", "depgraph"}
	if strings.Join(phaseOrder, ",") != strings.Join(want, ",") {
		t.Errorf("phase order = %v, want %v", phaseOrder, want)
	}
	// Printed durations round to 0.01ms, so allow one rounding step per
	// phase of slack.
	if slack := 0.01 * float64(len(phaseOrder)+1); phaseSum > spans[0].ms+slack {
		t.Errorf("phases sum to %.2fms, more than the %.2fms root", phaseSum, spans[0].ms)
	}
}

// TestTraceJSONModeKeepsStdoutClean: -trace with -format json must not
// corrupt the wire output (the tree goes to stderr).
func TestTraceJSONModeKeepsStdoutClean(t *testing.T) {
	f := filepath.Join("..", "..", "examples", "shift.mini")
	status, out, stderr := runCmd(t, "-trace", "-format", "json", f)
	if status != 0 {
		t.Fatalf("status %d, stderr:\n%s", status, stderr)
	}
	var resp map[string]any
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("stdout is not JSON with -trace: %v", err)
	}
	if !strings.Contains(stderr, "trace ") || !strings.Contains(stderr, "fixpoint") {
		t.Errorf("stderr has no span tree:\n%s", stderr)
	}
}

// TestLogFlagValidation: the shared -log-level/-log-format vocabulary is
// enforced with usage errors.
func TestLogFlagValidation(t *testing.T) {
	good := writeTemp(t, "void f() { return; }")
	if status, _, _ := runCmd(t, "-log-level", "loud", good); status != adds.ExitUsage {
		t.Errorf("-log-level loud status = %d, want %d", status, adds.ExitUsage)
	}
	if status, _, _ := runCmd(t, "-log-format", "xml", good); status != adds.ExitUsage {
		t.Errorf("-log-format xml status = %d, want %d", status, adds.ExitUsage)
	}
}
