// Command addsc is the analysis driver: it parses a mini source file and
// prints, per function, whatever the -show flags request — path matrices,
// dependence graphs (optionally DOT), pseudo-assembly, or the software
// pipelining derivation.
//
// Usage:
//
//	addsc -fn shift -show matrix,deps,ir prog.mini
//	addsc -fn shift -show pipeline -width 8 prog.mini
//	addsc -fn shift -oracle conservative -show deps prog.mini
//	addsc -show check prog.mini          # parse + type-check only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/adds"
)

func main() {
	fn := flag.String("fn", "", "function to analyze (default: every function)")
	show := flag.String("show", "matrix", "comma-separated: check,ir,matrix,iter,deps,dot,validate,pipeline,unroll")
	oracleName := flag.String("oracle", "gpm", "alias oracle: gpm, classic, conservative, klimit")
	k := flag.Int("k", 2, "k for the k-limited oracle")
	width := flag.Int("width", 8, "VLIW width for -show pipeline")
	unroll := flag.Int("unroll", 3, "factor for -show unroll")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: addsc [flags] file.mini")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		fatal(err)
	}

	wants := map[string]bool{}
	for _, s := range strings.Split(*show, ",") {
		wants[strings.TrimSpace(s)] = true
	}
	if wants["check"] && len(wants) == 1 {
		fmt.Println("ok")
		return
	}

	var fns []string
	if *fn != "" {
		fns = []string{*fn}
	} else {
		for _, fd := range unit.Prog.Funcs {
			fns = append(fns, fd.Name)
		}
	}

	for _, name := range fns {
		an, err := unit.Analyze(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== function %s ===\n", name)

		oracle := pickOracle(an, *oracleName, *k)

		if wants["ir"] {
			fmt.Println("pseudo-assembly:")
			fmt.Println(an.IR().String())
		}
		if wants["validate"] {
			fmt.Println("abstraction validation (Section 5.1.1):")
			fmt.Print(an.Validation().Report())
		}
		if wants["matrix"] {
			fmt.Println("path matrix at exit:")
			fmt.Println(an.ExitMatrix().String())
			for i := 0; i < an.Loops(); i++ {
				fmt.Printf("path matrix at loop %d fixed point:\n", i)
				fmt.Println(an.LoopMatrix(i).String())
			}
		}
		if wants["iter"] {
			for i := 0; i < an.Loops(); i++ {
				fmt.Printf("iteration (primed) matrix for loop %d:\n", i)
				fmt.Println(an.IterationMatrix(i).String())
			}
		}
		if wants["deps"] || wants["dot"] {
			for i := 0; i < an.Loops(); i++ {
				dg := an.Dependences(i, oracle)
				if wants["deps"] {
					fmt.Println(dg.String())
				}
				if wants["dot"] {
					fmt.Println(dg.DOT())
				}
			}
		}
		if wants["pipeline"] {
			for i := 0; i < an.Loops(); i++ {
				prog, info, err := an.Pipeline(i, *width)
				if err != nil {
					fmt.Printf("loop %d: not pipelined: %v\n", i, err)
					continue
				}
				fmt.Printf("loop %d pipelined (II=%d, theoretical speedup %.1f):\n",
					i, info.II, info.Theoretic)
				fmt.Println(prog.String())
			}
		}
		if wants["unroll"] {
			for i := 0; i < an.Loops(); i++ {
				u, err := an.Unroll(i, *unroll)
				if err != nil {
					fmt.Printf("loop %d: not unrolled: %v\n", i, err)
					continue
				}
				fmt.Printf("loop %d unrolled %dx:\n", i, *unroll)
				fmt.Println(u.String())
			}
		}
	}
}

func pickOracle(an *adds.Analysis, name string, k int) adds.Oracle {
	switch name {
	case "gpm":
		return an.GPMOracle()
	case "classic":
		return an.ClassicOracle()
	case "conservative":
		return an.ConservativeOracle()
	case "klimit":
		return an.KLimitedOracle(k)
	}
	fatal(fmt.Errorf("unknown oracle %q", name))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "addsc:", err)
	os.Exit(1)
}
