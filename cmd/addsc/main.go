// Command addsc is the analysis driver: it parses a mini source file and
// prints, per function, whatever the -show flags request — path matrices,
// dependence graphs (optionally DOT), pseudo-assembly, or the software
// pipelining derivation.
//
// Usage:
//
//	addsc -fn shift -show matrix,deps prog.mini
//	addsc -fn shift -show pipeline -width 8 prog.mini
//	addsc -fn shift -oracle conservative -show deps prog.mini
//	addsc -show check prog.mini          # parse + type-check only
//	addsc -par 4 -show matrix prog.mini  # analyze functions in parallel
//	addsc -format json prog.mini         # the addsd wire encoding, to stdout
//	addsc -trace -fn shift prog.mini     # span tree of the run, to stderr
//
// Exit codes are shared across the adds tools: 0 ok, 1 internal, 2 usage,
// 3 source error, 4 unknown function, 5 no such loop, 6 bad width.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"repro/adds"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out so tests can drive it in-process.
// Internal panics (analysis bugs, not user errors) are reported as a single
// line instead of a stack trace.
func run(args []string, stdout, stderr io.Writer) (status int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "addsc: internal error: %v\n", r)
			status = 1
		}
	}()

	fs := flag.NewFlagSet("addsc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fn := fs.String("fn", "", "function to analyze (default: every function)")
	show := fs.String("show", "matrix", "comma-separated: check,ir,matrix,iter,deps,dot,validate,pipeline,unroll")
	width := fs.Int("width", 8, "VLIW width for -show pipeline")
	unroll := fs.Int("unroll", 3, "factor for -show unroll")
	trace := fs.Bool("trace", false, "trace the run and render the span tree to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	of := cli.RegisterOracleFlags(fs)
	par := cli.RegisterPar(fs, "analysis")
	format := cli.RegisterFormat(fs, "text", "text", "json")
	lf := cli.RegisterLogFlags(fs, "text")
	if err := fs.Parse(args); err != nil {
		return adds.ExitUsage
	}

	// fail reports one error the one-line way and picks the shared exit code
	// for its class, so scripts can branch on status without parsing text.
	fail := func(err error) int {
		fmt.Fprintln(stderr, "addsc:", err)
		return cli.ExitCode(err)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: addsc [flags] file.mini")
		fs.Usage()
		return adds.ExitUsage
	}
	if err := cli.CheckFormat("addsc", *format, "text", "json"); err != nil {
		return fail(err)
	}
	lg, err := lf.Logger(stderr)
	if err != nil {
		return fail(err)
	}
	oracleName, err := of.Canonical()
	if err != nil {
		return fail(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}

	known := map[string]bool{
		"check": true, "ir": true, "matrix": true, "iter": true, "deps": true,
		"dot": true, "validate": true, "pipeline": true, "unroll": true,
	}
	wants := map[string]bool{}
	for _, s := range strings.Split(*show, ",") {
		s = strings.TrimSpace(s)
		if !known[s] {
			fmt.Fprintf(stderr, "addsc: unknown -show item %q (known: check,ir,matrix,iter,deps,dot,validate,pipeline,unroll)\n", s)
			return adds.ExitUsage
		}
		wants[s] = true
	}

	// With -trace the whole run happens under one root span; every phase the
	// facade opens (parse, typecheck, shape, normalize, fixpoint, ir, and the
	// transformation helpers) nests below it, and the tree renders to stderr
	// on the way out — including failed runs, where the partial tree shows
	// which phase died.
	ctx := context.Background()
	var tracer *obs.Tracer
	var root *obs.Span
	if *trace {
		tracer = obs.NewTracer(1)
		ctx, root = tracer.StartRoot(ctx, "addsc", obs.TraceID{})
		defer func() {
			root.End()
			t := tracer.Ring().Get(root.TraceID())
			obs.WriteTree(stderr, t)
		}()
	}

	// JSON mode goes through the same builders as the addsd endpoints, so
	// the CLI and the daemon can never disagree about the wire encoding.
	if *format == "json" {
		return runJSON(ctx, stdout, stderr, fail, string(src), *fn, of.Name, of.K, *par, *width, wants["pipeline"])
	}

	unit, err := adds.LoadCtx(ctx, src)
	if err != nil {
		return fail(err)
	}

	if wants["check"] && len(wants) == 1 {
		fmt.Fprintln(stdout, "ok")
		return 0
	}

	// Analyze up front — all functions in parallel, or just the requested
	// one — then print in source order so output is deterministic.
	var fns []string
	analyses := map[string]*adds.Analysis{}
	if *fn != "" {
		an, err := unit.AnalyzeOpt(ctx, *fn)
		if err != nil {
			return fail(err)
		}
		fns = []string{*fn}
		analyses[*fn] = an
	} else {
		analyses, err = unit.AnalyzeAllOpt(ctx, adds.WithWorkers(*par))
		if err != nil {
			return fail(err)
		}
		for _, fd := range unit.Prog.Funcs {
			fns = append(fns, fd.Name)
		}
	}
	lg.Debug("analysis complete", "functions", len(fns), "oracle", oracleName)

	for _, name := range fns {
		an := analyses[name]
		fmt.Fprintf(stdout, "=== function %s ===\n", name)

		// The name was validated above, so construction cannot fail.
		oracle, err := an.OracleNamed(ctx, oracleName, of.K)
		if err != nil {
			return fail(err)
		}

		if wants["ir"] {
			fmt.Fprintln(stdout, "pseudo-assembly:")
			fmt.Fprintln(stdout, an.IR().String())
		}
		if wants["validate"] {
			fmt.Fprintln(stdout, "abstraction validation (Section 5.1.1):")
			fmt.Fprint(stdout, an.Validation().Report())
		}
		if wants["matrix"] {
			fmt.Fprintln(stdout, "path matrix at exit:")
			fmt.Fprintln(stdout, an.ExitMatrix().String())
			for i := 0; i < an.Loops(); i++ {
				fmt.Fprintf(stdout, "path matrix at loop %d fixed point:\n", i)
				fmt.Fprintln(stdout, an.LoopMatrix(i).String())
			}
		}
		if wants["iter"] {
			for i := 0; i < an.Loops(); i++ {
				fmt.Fprintf(stdout, "iteration (primed) matrix for loop %d:\n", i)
				fmt.Fprintln(stdout, an.IterationMatrix(i).String())
			}
		}
		if wants["deps"] || wants["dot"] {
			for i := 0; i < an.Loops(); i++ {
				dg := an.DependencesCtx(ctx, i, oracle)
				if wants["deps"] {
					fmt.Fprintln(stdout, dg.String())
				}
				if wants["dot"] {
					fmt.Fprintln(stdout, dg.DOT())
				}
			}
		}
		if wants["pipeline"] {
			for i := 0; i < an.Loops(); i++ {
				prog, info, err := an.PipelineCtx(ctx, i, *width)
				if err != nil {
					fmt.Fprintf(stdout, "loop %d: not pipelined: %v\n", i, err)
					continue
				}
				fmt.Fprintf(stdout, "loop %d pipelined (II=%d, theoretical speedup %.1f):\n",
					i, info.II, info.Theoretic)
				fmt.Fprintln(stdout, prog.String())
			}
		}
		if wants["unroll"] {
			for i := 0; i < an.Loops(); i++ {
				u, err := an.UnrollCtx(ctx, i, *unroll)
				if err != nil {
					fmt.Fprintf(stdout, "loop %d: not unrolled: %v\n", i, err)
					continue
				}
				fmt.Fprintf(stdout, "loop %d unrolled %dx:\n", i, *unroll)
				fmt.Fprintln(stdout, u.String())
			}
		}
	}
	return 0
}

// runJSON prints the daemon's wire encoding: an AnalyzeResponse, plus one
// PipelineResponse per loop when -show pipeline was requested.
func runJSON(ctx context.Context, stdout, stderr io.Writer, fail func(error) int, src, fn, oracle string, k, par, width int, withPipeline bool) int {
	// Request-shape mistakes (an unknown oracle) are usage errors here, the
	// same class the flag parser reports.
	jfail := func(err error) int {
		if errors.Is(err, service.ErrBadRequest) {
			fmt.Fprintln(stderr, "addsc:", err)
			return adds.ExitUsage
		}
		return fail(err)
	}
	resp, err := service.BuildAnalyze(ctx, &service.AnalyzeRequest{
		Source: src, Fn: fn, Oracle: oracle, K: k, Workers: par,
	})
	if err != nil {
		return jfail(err)
	}
	out := struct {
		*service.AnalyzeResponse
		Pipelines []*service.PipelineResponse `json:"pipelines,omitempty"`
	}{AnalyzeResponse: resp}
	if withPipeline {
		for _, fr := range resp.Functions {
			for i := 0; i < fr.Loops; i++ {
				p, err := service.BuildPipeline(ctx, &service.PipelineRequest{
					Source: src, Fn: fr.Name, Loop: i, Width: width, Oracle: oracle, K: k,
				})
				if err != nil {
					return jfail(err)
				}
				out.Pipelines = append(out.Pipelines, p)
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(out); err != nil {
		return fail(err)
	}
	return 0
}
